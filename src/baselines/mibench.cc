/**
 * @file
 * Twelve MiBench-style general-purpose kernels (paper III-C): the
 * character of an embedded benchmark suite — integer-dominated loops,
 * sorting, graph relaxation, bit manipulation, string processing,
 * codecs — with only a few FP users (fft), matching the paper's
 * observation that most MiBench programs never touch the SSE units.
 */

#include "baselines/workloads.hh"

#include "baselines/kernel_common.hh"
#include "isa/registers.hh"

namespace harpo::baselines
{

using namespace harpo::isa;
using PB = ProgramBuilder;

namespace
{

/** bitcount: popcount plus shift-and-mask counting over a buffer. */
Workload
bitcountKernel()
{
    constexpr int qwords = 512;
    auto b = makeKernelBuilder("mibench-bitcount");
    b.initMemQwords(kernelBase, randomQwords(qwords, 0x21));
    b.setGpr(RBX, kernelBase);
    b.setGpr(RCX, qwords);
    b.i("mov r64, imm64", {PB::gpr(RAX), PB::imm(0)}); // popcnt total
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(0)});  // manual total
    auto loop = b.here();
    b.i("mov r64, m64", {PB::gpr(RDX), PB::mem(RBX)});
    b.i("popcnt r64, r64", {PB::gpr(R9), PB::gpr(RDX)});
    b.i("add r64, r64", {PB::gpr(RAX), PB::gpr(R9)});
    // Manual: count bits of the low byte by shifting.
    b.i("and r64, imm32", {PB::gpr(RDX), PB::imm(0xFF)});
    for (int bit = 0; bit < 8; ++bit) {
        b.i("mov r64, r64", {PB::gpr(R10), PB::gpr(RDX)});
        b.i("shr r64, imm8", {PB::gpr(R10), PB::imm(bit)});
        b.i("and r64, imm32", {PB::gpr(R10), PB::imm(1)});
        b.i("add r64, r64", {PB::gpr(R8), PB::gpr(R10)});
    }
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(8)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", loop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(RAX)});
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4008), PB::gpr(R8)});
    return {"MiBench", "bitcount", b.build()};
}

/** qsort stand-in: insertion sort of qwords (the suite's sort). */
Workload
qsortKernel()
{
    constexpr int n = 160;
    auto b = makeKernelBuilder("mibench-qsort");
    b.initMemQwords(kernelBase, randomQwords(n, 0x22));
    b.setGpr(RSI, kernelBase);
    // for (i = 1; i < n; ++i) { key = a[i]; j = i-1;
    //   while (j >= 0 && a[j] > key) { a[j+1] = a[j]; --j; }
    //   a[j+1] = key; }
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(1)}); // i
    auto iLoop = b.here();
    b.i("mov r64, r64", {PB::gpr(RAX), PB::gpr(R8)});
    b.i("shl r64, imm8", {PB::gpr(RAX), PB::imm(3)});
    b.i("add r64, r64", {PB::gpr(RAX), PB::gpr(RSI)});
    b.i("mov r64, m64", {PB::gpr(RDX), PB::mem(RAX)}); // key
    b.i("mov r64, r64", {PB::gpr(RBX), PB::gpr(RAX)}); // &a[j+1]
    auto innerTop = b.here();
    b.i("cmp r64, r64", {PB::gpr(RBX), PB::gpr(RSI)});
    auto place = b.newLabel();
    b.br("je rel32", place); // j < 0
    b.i("mov r64, m64", {PB::gpr(R9), PB::mem(RBX, -8)}); // a[j]
    b.i("cmp r64, r64", {PB::gpr(R9), PB::gpr(RDX)});
    b.br("jb rel32", place); // unsigned a[j] < key
    b.br("je rel32", place); // or equal
    b.i("mov m64, r64", {PB::mem(RBX), PB::gpr(R9)});
    b.i("sub r64, imm32", {PB::gpr(RBX), PB::imm(8)});
    b.br("jmp rel32", innerTop);
    b.bind(place);
    b.i("mov m64, r64", {PB::mem(RBX), PB::gpr(RDX)});
    b.i("inc r64", {PB::gpr(R8)});
    b.i("cmp r64, imm32", {PB::gpr(R8), PB::imm(n)});
    b.br("jne rel32", iLoop);
    return {"MiBench", "qsort", b.build()};
}

/** dijkstra: Bellman-Ford-style relaxation on an adjacency matrix. */
Workload
dijkstraKernel()
{
    constexpr int nodes = 12;
    auto b = makeKernelBuilder("mibench-dijkstra");
    const std::uint64_t adjBase = kernelBase;            // nodes*nodes
    const std::uint64_t distBase = kernelBase + 0x2000;  // nodes
    {
        Rng rng(0x23);
        std::vector<std::uint64_t> adj(nodes * nodes);
        for (auto &w : adj)
            w = 1 + rng.below(100);
        b.initMemQwords(adjBase, adj);
        std::vector<std::uint64_t> dist(nodes, 1u << 30);
        dist[0] = 0;
        b.initMemQwords(distBase, dist);
    }
    // nodes-1 relaxation rounds over every edge (u, v).
    b.i("mov r64, imm64", {PB::gpr(R11), PB::imm(0)}); // round
    auto roundLoop = b.here();
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(0)}); // u
    auto uLoop = b.here();
    b.i("mov r64, imm64", {PB::gpr(R9), PB::imm(0)}); // v
    auto vLoop = b.here();
    // rax = dist[u] + adj[u][v]
    b.i("mov r64, r64", {PB::gpr(RAX), PB::gpr(R8)});
    b.i("shl r64, imm8", {PB::gpr(RAX), PB::imm(3)});
    b.i("add r64, imm32", {PB::gpr(RAX), PB::imm(
        static_cast<std::int32_t>(distBase))});
    b.i("mov r64, m64", {PB::gpr(RDX), PB::mem(RAX)}); // dist[u]
    b.i("mov r64, r64", {PB::gpr(RBX), PB::gpr(R8)});
    b.i("imul r64, r64", {PB::gpr(RBX), PB::gpr(R12)}); // * nodes*8
    b.i("mov r64, r64", {PB::gpr(RBP), PB::gpr(R9)});
    b.i("shl r64, imm8", {PB::gpr(RBP), PB::imm(3)});
    b.i("add r64, r64", {PB::gpr(RBX), PB::gpr(RBP)});
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(
        static_cast<std::int32_t>(adjBase))});
    b.i("add r64, m64", {PB::gpr(RDX), PB::mem(RBX)}); // + weight
    // if (rdx < dist[v]) dist[v] = rdx
    b.i("mov r64, r64", {PB::gpr(RCX), PB::gpr(R9)});
    b.i("shl r64, imm8", {PB::gpr(RCX), PB::imm(3)});
    b.i("add r64, imm32", {PB::gpr(RCX), PB::imm(
        static_cast<std::int32_t>(distBase))});
    b.i("mov r64, m64", {PB::gpr(R10), PB::mem(RCX)}); // dist[v]
    b.i("cmp r64, r64", {PB::gpr(RDX), PB::gpr(R10)});
    b.i("cmovb r64, r64", {PB::gpr(R10), PB::gpr(RDX)});
    b.i("mov m64, r64", {PB::mem(RCX), PB::gpr(R10)});
    b.i("inc r64", {PB::gpr(R9)});
    b.i("cmp r64, imm32", {PB::gpr(R9), PB::imm(nodes)});
    b.br("jne rel32", vLoop);
    b.i("inc r64", {PB::gpr(R8)});
    b.i("cmp r64, imm32", {PB::gpr(R8), PB::imm(nodes)});
    b.br("jne rel32", uLoop);
    b.i("inc r64", {PB::gpr(R11)});
    b.i("cmp r64, imm32", {PB::gpr(R11), PB::imm(nodes - 1)});
    b.br("jne rel32", roundLoop);
    b.setGpr(R12, nodes * 8);
    return {"MiBench", "dijkstra", b.build()};
}

/** sha-like integer mixing rounds over a message block. */
Workload
shaKernel()
{
    constexpr int blocks = 8;
    constexpr int rounds = 64;
    auto b = makeKernelBuilder("mibench-sha");
    b.initMemQwords(kernelBase, randomQwords(blocks * 16, 0x24));
    b.setGpr(RAX, 0x6A09E667F3BCC908ull); // h0
    b.setGpr(RDX, 0xBB67AE8584CAA73Bull); // h1
    b.setGpr(R10, 0x3C6EF372FE94F82Bull); // h2
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(0)}); // block
    auto blockLoop = b.here();
    b.i("mov r64, r64", {PB::gpr(RBX), PB::gpr(R8)});
    b.i("shl r64, imm8", {PB::gpr(RBX), PB::imm(7)}); // *128 bytes
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(
        static_cast<std::int32_t>(kernelBase))});
    b.i("mov r64, imm64", {PB::gpr(RCX), PB::imm(rounds)});
    auto roundLoop = b.here();
    // w = msg[(round*8) % 128]; rotate pointer within the block.
    b.i("mov r64, m64", {PB::gpr(R9), PB::mem(RBX)});
    b.i("add r64, r64", {PB::gpr(RAX), PB::gpr(R9)});
    b.i("rol r64, imm8", {PB::gpr(RAX), PB::imm(13)});
    b.i("xor r64, r64", {PB::gpr(RAX), PB::gpr(RDX)});
    b.i("add r64, r64", {PB::gpr(RDX), PB::gpr(RAX)});
    b.i("ror r64, imm8", {PB::gpr(RDX), PB::imm(7)});
    b.i("xor r64, r64", {PB::gpr(R10), PB::gpr(RAX)});
    b.i("add r64, r64", {PB::gpr(R10), PB::gpr(RDX)});
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(8)});
    // wrap pointer every 16 words: mask offset
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", roundLoop);
    b.i("inc r64", {PB::gpr(R8)});
    b.i("cmp r64, imm32", {PB::gpr(R8), PB::imm(blocks)});
    b.br("jne rel32", blockLoop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x6000), PB::gpr(RAX)});
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x6008), PB::gpr(RDX)});
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x6010), PB::gpr(R10)});
    return {"MiBench", "sha", b.build()};
}

/** CRC-16/CCITT over a byte buffer. */
Workload
crcKernel()
{
    constexpr int len = 1024;
    auto b = makeKernelBuilder("mibench-crc");
    b.initMem(kernelBase, randomBytes(len, 0x25));
    b.setGpr(RBX, kernelBase);
    b.setGpr(RCX, len);
    b.setGpr(RBP, 0x1021); // CCITT polynomial
    b.i("mov r64, imm64", {PB::gpr(RAX), PB::imm(0xFFFF)});
    auto loop = b.here();
    b.i("mov r64, m8", {PB::gpr(RDX), PB::mem(RBX)});
    b.i("shl r64, imm8", {PB::gpr(RDX), PB::imm(8)});
    b.i("xor r64, r64", {PB::gpr(RAX), PB::gpr(RDX)});
    for (int round = 0; round < 8; ++round) {
        b.i("mov r64, r64", {PB::gpr(RDX), PB::gpr(RAX)});
        b.i("and r64, imm32", {PB::gpr(RDX), PB::imm(0x8000)});
        b.i("shl r64, imm8", {PB::gpr(RAX), PB::imm(1)});
        b.i("test r64, r64", {PB::gpr(RDX), PB::gpr(RDX)});
        auto noXor = b.newLabel();
        b.br("je rel32", noXor);
        b.i("xor r64, r64", {PB::gpr(RAX), PB::gpr(RBP)});
        b.bind(noXor);
        b.i("and r64, imm32", {PB::gpr(RAX), PB::imm(0xFFFF)});
    }
    b.i("inc r64", {PB::gpr(RBX)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", loop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(RAX)});
    return {"MiBench", "crc", b.build()};
}

/** basicmath: bit-by-bit integer square roots and subtraction GCDs. */
Workload
basicmathKernel()
{
    constexpr int count = 64;
    auto b = makeKernelBuilder("mibench-basicmath");
    b.initMemQwords(kernelBase, randomQwords(count, 0x26));
    b.setGpr(RSI, kernelBase);
    b.setGpr(R11, count);
    b.i("mov r64, imm64", {PB::gpr(R12), PB::imm(0)}); // checksum
    auto outer = b.here();
    b.i("mov r64, m64", {PB::gpr(RAX), PB::mem(RSI)});
    b.i("and r64, imm32", {PB::gpr(RAX), PB::imm(0x7FFFFFFF)});
    // isqrt(rax): res in rbx, bit scan from 1<<30.
    b.i("mov r64, imm64", {PB::gpr(RBX), PB::imm(0)});
    b.i("mov r64, imm64", {PB::gpr(RCX), PB::imm(1ll << 30)});
    auto sqrtLoop = b.here();
    b.i("mov r64, r64", {PB::gpr(RDX), PB::gpr(RBX)});
    b.i("add r64, r64", {PB::gpr(RDX), PB::gpr(RCX)});
    b.i("shr r64, imm8", {PB::gpr(RBX), PB::imm(1)});
    b.i("cmp r64, r64", {PB::gpr(RAX), PB::gpr(RDX)});
    auto skip = b.newLabel();
    b.br("jb rel32", skip);
    b.i("sub r64, r64", {PB::gpr(RAX), PB::gpr(RDX)});
    b.i("add r64, r64", {PB::gpr(RBX), PB::gpr(RCX)});
    b.bind(skip);
    b.i("shr r64, imm8", {PB::gpr(RCX), PB::imm(2)});
    b.i("test r64, r64", {PB::gpr(RCX), PB::gpr(RCX)});
    b.br("jne rel32", sqrtLoop);
    b.i("add r64, r64", {PB::gpr(R12), PB::gpr(RBX)});
    b.i("add r64, imm32", {PB::gpr(RSI), PB::imm(8)});
    b.i("dec r64", {PB::gpr(R11)});
    b.br("jne rel32", outer);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(R12)});
    return {"MiBench", "basicmath", b.build()};
}

/** stringsearch: byte-wise pattern scan. */
Workload
stringsearchKernel()
{
    constexpr int textLen = 2048;
    auto b = makeKernelBuilder("mibench-stringsearch");
    auto text = randomBytes(textLen, 0x27);
    for (auto &byte : text)
        byte = 'a' + (byte % 4); // small alphabet -> partial matches
    // Plant the needle a few times.
    const char *needle = "abca";
    for (int pos : {100, 900, 1700}) {
        for (int i = 0; i < 4; ++i)
            text[pos + i] = static_cast<std::uint8_t>(needle[i]);
    }
    b.initMem(kernelBase, text);
    b.setGpr(RBX, kernelBase);
    b.setGpr(RCX, textLen - 4);
    b.i("mov r64, imm64", {PB::gpr(R12), PB::imm(0)}); // match count
    auto loop = b.here();
    auto noMatch = b.newLabel();
    for (int i = 0; i < 4; ++i) {
        b.i("mov r64, m8", {PB::gpr(RDX), PB::mem(RBX, i)});
        b.i("cmp r64, imm32", {PB::gpr(RDX), PB::imm(needle[i])});
        b.br("jne rel32", noMatch);
    }
    b.i("inc r64", {PB::gpr(R12)});
    b.bind(noMatch);
    b.i("inc r64", {PB::gpr(RBX)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", loop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(R12)});
    return {"MiBench", "stringsearch", b.build()};
}

/** fft-lite: direct small DFT against precomputed twiddle tables
 *  (one of the few FP users in the suite). */
Workload
fftKernel()
{
    constexpr int n = 32;
    auto b = makeKernelBuilder("mibench-fft");
    const std::uint64_t xBase = kernelBase;
    const std::uint64_t cosBase = kernelBase + 0x2000; // n*n table
    const std::uint64_t outBase = kernelBase + 0x8000;
    b.initMemQwords(xBase, randomDoubles(n, 0x28, -1.0, 1.0));
    {
        // Twiddle-like table: deterministic pseudo-cosines.
        std::vector<std::uint64_t> table =
            randomDoubles(n * n, 0x29, -1.0, 1.0);
        b.initMemQwords(cosBase, table);
    }
    b.setGpr(R12, n * 8);
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(0)}); // k
    auto kLoop = b.here();
    b.i("xorpd xmm, xmm", {PB::xmm(0), PB::xmm(0)}); // acc
    b.i("mov r64, imm64", {PB::gpr(RBX), PB::imm(xBase)});
    // row pointer = cosBase + k*n*8
    b.i("mov r64, r64", {PB::gpr(RDX), PB::gpr(R8)});
    b.i("imul r64, r64", {PB::gpr(RDX), PB::gpr(R12)});
    b.i("add r64, imm32", {PB::gpr(RDX), PB::imm(
        static_cast<std::int32_t>(cosBase))});
    b.i("mov r64, imm64", {PB::gpr(RCX), PB::imm(n)});
    auto sumLoop = b.here();
    b.i("movsd xmm, m64", {PB::xmm(1), PB::mem(RBX)});
    b.i("mulsd xmm, m64", {PB::xmm(1), PB::mem(RDX)});
    b.i("addsd xmm, xmm", {PB::xmm(0), PB::xmm(1)});
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(8)});
    b.i("add r64, imm32", {PB::gpr(RDX), PB::imm(8)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", sumLoop);
    // out[k]
    b.i("mov r64, r64", {PB::gpr(RAX), PB::gpr(R8)});
    b.i("shl r64, imm8", {PB::gpr(RAX), PB::imm(3)});
    b.i("add r64, imm32", {PB::gpr(RAX), PB::imm(
        static_cast<std::int32_t>(outBase))});
    b.i("movsd m64, xmm", {PB::mem(RAX), PB::xmm(0)});
    b.i("inc r64", {PB::gpr(R8)});
    b.i("cmp r64, imm32", {PB::gpr(R8), PB::imm(n)});
    b.br("jne rel32", kLoop);
    return {"MiBench", "fft", b.build()};
}

/** adpcm-like step codec: adds, shifts, clamps via CMOV. */
Workload
adpcmKernel()
{
    constexpr int samples = 1024;
    auto b = makeKernelBuilder("mibench-adpcm");
    b.initMem(kernelBase, randomBytes(samples, 0x2A));
    b.setGpr(RBX, kernelBase);
    b.setGpr(RCX, samples);
    b.i("mov r64, imm64", {PB::gpr(RAX), PB::imm(0)});   // predictor
    b.i("mov r64, imm64", {PB::gpr(R8), PB::imm(16)});   // step
    b.i("mov r64, imm64", {PB::gpr(R11), PB::imm(0x7FFF)});
    auto loop = b.here();
    b.i("mov r64, m8", {PB::gpr(RDX), PB::mem(RBX)}); // delta nibble
    b.i("and r64, imm32", {PB::gpr(RDX), PB::imm(0xF)});
    // diff = step * delta >> 2
    b.i("mov r64, r64", {PB::gpr(R9), PB::gpr(R8)});
    b.i("imul r64, r64", {PB::gpr(R9), PB::gpr(RDX)});
    b.i("shr r64, imm8", {PB::gpr(R9), PB::imm(2)});
    b.i("add r64, r64", {PB::gpr(RAX), PB::gpr(R9)});
    // clamp predictor to 0x7FFF
    b.i("cmp r64, r64", {PB::gpr(RAX), PB::gpr(R11)});
    b.i("cmovae r64, r64", {PB::gpr(RAX), PB::gpr(R11)});
    // step adaptation: grow on large delta, shrink otherwise.
    b.i("cmp r64, imm32", {PB::gpr(RDX), PB::imm(8)});
    auto small = b.newLabel();
    b.br("jb rel32", small);
    b.i("shl r64, imm8", {PB::gpr(R8), PB::imm(1)});
    b.bind(small);
    b.i("shr r64, imm8", {PB::gpr(R8), PB::imm(0)}); // keep flags sane
    b.i("add r64, imm32", {PB::gpr(R8), PB::imm(1)});
    b.i("and r64, imm32", {PB::gpr(R8), PB::imm(0xFFF)});
    b.i("inc r64", {PB::gpr(RBX)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", loop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(RAX)});
    return {"MiBench", "adpcm", b.build()};
}

/** patricia-like bit-trie walk over a node table. */
Workload
patriciaKernel()
{
    constexpr int nodes = 256;
    constexpr int lookups = 512;
    auto b = makeKernelBuilder("mibench-patricia");
    const std::uint64_t trieBase = kernelBase;        // nodes * 16 B
    const std::uint64_t keysBase = kernelBase + 0x4000;
    {
        Rng rng(0x2B);
        // Node: two child indices (each < nodes).
        std::vector<std::uint64_t> trie(nodes * 2);
        for (auto &child : trie)
            child = rng.below(nodes);
        b.initMemQwords(trieBase, trie);
        b.initMemQwords(keysBase, randomQwords(lookups, 0x2C));
    }
    b.setGpr(RSI, keysBase);
    b.setGpr(R11, lookups);
    b.i("mov r64, imm64", {PB::gpr(R12), PB::imm(0)}); // checksum
    auto outer = b.here();
    b.i("mov r64, m64", {PB::gpr(RDX), PB::mem(RSI)}); // key
    b.i("mov r64, imm64", {PB::gpr(RAX), PB::imm(0)}); // node
    b.i("mov r64, imm64", {PB::gpr(RCX), PB::imm(16)}); // depth
    auto walk = b.here();
    // child = trie[node*2 + (key & 1)]
    b.i("mov r64, r64", {PB::gpr(RBX), PB::gpr(RAX)});
    b.i("shl r64, imm8", {PB::gpr(RBX), PB::imm(4)}); // node*16 bytes
    b.i("mov r64, r64", {PB::gpr(R9), PB::gpr(RDX)});
    b.i("and r64, imm32", {PB::gpr(R9), PB::imm(1)});
    b.i("shl r64, imm8", {PB::gpr(R9), PB::imm(3)});
    b.i("add r64, r64", {PB::gpr(RBX), PB::gpr(R9)});
    b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(
        static_cast<std::int32_t>(trieBase))});
    b.i("mov r64, m64", {PB::gpr(RAX), PB::mem(RBX)});
    b.i("shr r64, imm8", {PB::gpr(RDX), PB::imm(1)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", walk);
    b.i("add r64, r64", {PB::gpr(R12), PB::gpr(RAX)});
    b.i("add r64, imm32", {PB::gpr(RSI), PB::imm(8)});
    b.i("dec r64", {PB::gpr(R11)});
    b.br("jne rel32", outer);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x8000), PB::gpr(R12)});
    return {"MiBench", "patricia", b.build()};
}

/** susan-like image thresholding: byte loads, compares, accumulate. */
Workload
susanKernel()
{
    constexpr int dim = 64;
    auto b = makeKernelBuilder("mibench-susan");
    b.initMem(kernelBase, randomBytes(dim * dim, 0x2D));
    b.setGpr(RBX, kernelBase);
    b.setGpr(RCX, dim * dim);
    b.i("mov r64, imm64", {PB::gpr(R12), PB::imm(0)}); // bright count
    b.i("mov r64, imm64", {PB::gpr(R11), PB::imm(0)}); // sum
    auto loop = b.here();
    b.i("mov r64, m8", {PB::gpr(RDX), PB::mem(RBX)});
    b.i("add r64, r64", {PB::gpr(R11), PB::gpr(RDX)});
    b.i("cmp r64, imm32", {PB::gpr(RDX), PB::imm(128)});
    b.i("setae r64", {PB::gpr(R9)});
    b.i("add r64, r64", {PB::gpr(R12), PB::gpr(R9)});
    b.i("inc r64", {PB::gpr(RBX)});
    b.i("dec r64", {PB::gpr(RCX)});
    b.br("jne rel32", loop);
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4000), PB::gpr(R12)});
    b.i("mov m64, r64", {PB::abs(kernelBase + 0x4008), PB::gpr(R11)});
    return {"MiBench", "susan", b.build()};
}

/** rijndael-like rounds: table lookups, xors and rotations. */
Workload
rijndaelKernel()
{
    constexpr int blocks = 64;
    constexpr int rounds = 10;
    auto b = makeKernelBuilder("mibench-rijndael");
    const std::uint64_t sboxBase = kernelBase + 0x2000; // 256 qwords
    b.initMemQwords(kernelBase, randomQwords(blocks, 0x2E));
    b.initMemQwords(sboxBase, randomQwords(256, 0x2F));
    b.setGpr(RSI, kernelBase);
    b.setGpr(R11, blocks);
    auto blockLoop = b.here();
    b.i("mov r64, m64", {PB::gpr(RAX), PB::mem(RSI)});
    for (int round = 0; round < rounds; ++round) {
        // idx = state & 0xFF; state = rol(state ^ sbox[idx], 9) + key
        b.i("mov r64, r64", {PB::gpr(RBX), PB::gpr(RAX)});
        b.i("and r64, imm32", {PB::gpr(RBX), PB::imm(0xFF)});
        b.i("shl r64, imm8", {PB::gpr(RBX), PB::imm(3)});
        b.i("add r64, imm32", {PB::gpr(RBX), PB::imm(
            static_cast<std::int32_t>(sboxBase))});
        b.i("xor r64, m64", {PB::gpr(RAX), PB::mem(RBX)});
        b.i("rol r64, imm8", {PB::gpr(RAX), PB::imm(9)});
        b.i("add r64, imm32", {PB::gpr(RAX), PB::imm(0x9E3779B9)});
    }
    b.i("mov m64, r64", {PB::mem(RSI), PB::gpr(RAX)});
    b.i("add r64, imm32", {PB::gpr(RSI), PB::imm(8)});
    b.i("dec r64", {PB::gpr(R11)});
    b.br("jne rel32", blockLoop);
    return {"MiBench", "rijndael", b.build()};
}

} // namespace

std::vector<Workload>
mibenchSuite()
{
    std::vector<Workload> suite;
    suite.push_back(bitcountKernel());
    suite.push_back(qsortKernel());
    suite.push_back(dijkstraKernel());
    suite.push_back(shaKernel());
    suite.push_back(crcKernel());
    suite.push_back(basicmathKernel());
    suite.push_back(stringsearchKernel());
    suite.push_back(fftKernel());
    suite.push_back(adpcmKernel());
    suite.push_back(patriciaKernel());
    suite.push_back(susanKernel());
    suite.push_back(rijndaelKernel());
    return suite;
}

} // namespace harpo::baselines
