/**
 * @file
 * SiliFuzz-style baseline (paper III-A1): hardware-agnostic fuzzing of
 * raw byte sequences over a *software proxy* (the functional
 * emulator), guided by software coverage.
 *
 * Byte buffers are mutated with no notion of the encoding; sequences
 * that fail to decode, crash the proxy, or behave non-deterministically
 * are discarded (the paper reports ~2 of 3 discarded). Valid,
 * deterministic snapshots are kept; inputs that reach new proxy
 * coverage also join the mutation corpus. Snapshots are aggregated
 * into test programs of a configured instruction count, mirroring the
 * paper's aggregation of 100-byte snapshots into 10K-instruction
 * tests.
 */

#ifndef HARPOCRATES_BASELINES_SILIFUZZ_HH
#define HARPOCRATES_BASELINES_SILIFUZZ_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace harpo::baselines
{

/** Fuzzer configuration. */
struct SiliFuzzConfig
{
    unsigned iterations = 20000;      ///< fuzzing iterations
    unsigned snapshotBytes = 100;     ///< max snapshot binary size
    unsigned aggregateInstructions = 2000; ///< per aggregated test
    std::uint64_t seed = 1;
    std::uint64_t proxyStepLimit = 4096;
};

/** Fuzzing statistics (for the paper's discard-fraction claims and
 *  the section VI-A generation-rate comparison). */
struct SiliFuzzStats
{
    std::uint64_t generated = 0;   ///< candidate sequences produced
    std::uint64_t decodeFailed = 0;
    std::uint64_t crashed = 0;
    std::uint64_t nonDeterministic = 0;
    std::uint64_t kept = 0;        ///< runnable deterministic snapshots
    std::uint64_t runnableInstructions = 0;

    double
    discardFraction() const
    {
        return generated == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(kept) /
                               static_cast<double>(generated);
    }
};

/** The fuzzer. */
class SiliFuzz
{
  public:
    explicit SiliFuzz(SiliFuzzConfig config);

    /** Run the configured number of fuzzing iterations. */
    void fuzz();

    const SiliFuzzStats &stats() const { return statistics; }

    /** Kept snapshots, as decoded instruction sequences. */
    const std::vector<std::vector<isa::Inst>> &
    snapshots() const
    {
        return keptSnapshots;
    }

    /**
     * Aggregate snapshots into @p num_tests runnable test programs of
     * ~aggregateInstructions each. Each aggregate is validated on the
     * proxy (crash-free, deterministic) as it grows.
     */
    std::vector<isa::TestProgram> makeTests(unsigned num_tests) const;

    /** The shared execution environment (regions, initial registers)
     *  all snapshots run under. */
    static isa::TestProgram
    wrapSequence(const std::vector<isa::Inst> &code,
                 const std::string &name);

  private:
    /** Decode + proxy-validate one byte buffer; updates statistics;
     *  returns true and the decoded code when the snapshot is kept. */
    bool validate(const std::vector<std::uint8_t> &bytes,
                  std::vector<isa::Inst> &code_out,
                  std::uint64_t &features_out);

    SiliFuzzConfig cfg;
    SiliFuzzStats statistics;
    std::vector<std::vector<std::uint8_t>> corpus;
    std::vector<std::vector<isa::Inst>> keptSnapshots;
    std::vector<std::uint64_t> snapshotSeeds;
    std::uint64_t rngState = 0;
    std::vector<bool> featureMap;
};

} // namespace harpo::baselines

#endif // HARPOCRATES_BASELINES_SILIFUZZ_HH
