/**
 * @file
 * Shared scaffolding for hand-written baseline kernels: a standard
 * data region, stack, and deterministic pseudo-random data helpers.
 */

#ifndef HARPOCRATES_BASELINES_KERNEL_COMMON_HH
#define HARPOCRATES_BASELINES_KERNEL_COMMON_HH

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "isa/builder.hh"
#include "isa/registers.hh"

namespace harpo::baselines
{

/** Base address of every kernel's data region. */
constexpr std::uint64_t kernelBase = 0x100000;

/** Builder pre-configured with a data region and a stack. */
inline isa::ProgramBuilder
makeKernelBuilder(const std::string &name,
                  std::uint32_t region_size = 64 * 1024)
{
    isa::ProgramBuilder b(name);
    b.addRegion(kernelBase, region_size);
    b.addStack(kernelBase + 0x200000, 16 * 1024);
    return b;
}

/** Deterministic pseudo-random qwords for kernel input data. */
inline std::vector<std::uint64_t>
randomQwords(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> out(count);
    for (auto &v : out)
        v = rng.next();
    return out;
}

/** Deterministic pseudo-random bytes. */
inline std::vector<std::uint8_t>
randomBytes(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(count);
    for (auto &v : out)
        v = static_cast<std::uint8_t>(rng.next());
    return out;
}

/** Deterministic doubles in (lo, hi), stored as raw fp64 bits. */
inline std::vector<std::uint64_t>
randomDoubles(std::size_t count, std::uint64_t seed, double lo,
              double hi)
{
    Rng rng(seed);
    std::vector<std::uint64_t> out(count);
    for (auto &v : out) {
        const double d = lo + rng.uniform() * (hi - lo);
        std::memcpy(&v, &d, sizeof(v));
    }
    return out;
}

} // namespace harpo::baselines

#endif // HARPOCRATES_BASELINES_KERNEL_COMMON_HH
