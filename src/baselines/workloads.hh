/**
 * @file
 * Baseline workload suites (paper III-A/III-C):
 *  - dcdiagSuite(): OpenDCDiag-style datacenter diagnostics —
 *    algorithmic, data-corruption-sensitive kernels, several of them
 *    FP-heavy (matrix multiply, rotation sweeps);
 *  - mibenchSuite(): twelve MiBench-style general-purpose embedded
 *    kernels, mostly integer-dominated.
 *
 * Every workload is a self-contained HX86 TestProgram, hand-written
 * with the ProgramBuilder DSL, with bounded runtimes suitable for
 * repeated fault-injection campaigns.
 */

#ifndef HARPOCRATES_BASELINES_WORKLOADS_HH
#define HARPOCRATES_BASELINES_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace harpo::baselines
{

/** One named baseline workload. */
struct Workload
{
    std::string suite;
    std::string name;
    isa::TestProgram program;
};

/** The OpenDCDiag-like diagnostic suite (6 tests). */
std::vector<Workload> dcdiagSuite();

/** The MiBench-like general-purpose suite (12 programs). */
std::vector<Workload> mibenchSuite();

} // namespace harpo::baselines

#endif // HARPOCRATES_BASELINES_WORKLOADS_HH
