#include "baselines/silifuzz.hh"

#include "common/rng.hh"
#include "isa/emulator.hh"
#include "isa/encoding.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::baselines
{

namespace
{

constexpr std::uint64_t kRegionBase = 0x100000;
constexpr std::uint32_t kRegionSize = 32 * 1024;
constexpr std::uint64_t kStackBase = 0x300000;
constexpr std::uint32_t kStackSize = 64 * 1024;

} // namespace

isa::TestProgram
SiliFuzz::wrapSequence(const std::vector<isa::Inst> &code,
                       const std::string &name)
{
    isa::TestProgram p;
    p.name = name;
    p.code = code;
    p.regions.push_back({kRegionBase, kRegionSize});
    p.regions.push_back({kStackBase, kStackSize});
    // Fixed, seed-independent environment so snapshot behaviour is a
    // function of the code alone.
    Rng init(0xC0DE);
    for (int r = 0; r < 16; ++r)
        p.initGpr[r] = kRegionBase + init.below(kRegionSize - 64);
    p.initGpr[isa::RSI] = kRegionBase;
    p.initGpr[isa::RDI] = kRegionBase + kRegionSize / 2;
    p.initGpr[isa::RSP] = (kStackBase + kStackSize / 2) & ~0xFull;
    for (int r = 0; r < 16; ++r)
        p.initXmm[r] = {init.next(), init.next()};
    std::vector<std::uint8_t> mem(kRegionSize);
    for (auto &b : mem)
        b = static_cast<std::uint8_t>(init.next());
    p.memInit.push_back({kRegionBase, std::move(mem)});
    p.coreBegin = 0;
    p.coreEnd = p.code.size();
    return p;
}

SiliFuzz::SiliFuzz(SiliFuzzConfig config)
    : cfg(config), rngState(config.seed),
      featureMap(1u << 22, false)
{}

bool
SiliFuzz::validate(const std::vector<std::uint8_t> &bytes,
                   std::vector<isa::Inst> &code_out,
                   std::uint64_t &features_out)
{
    ++statistics.generated;

    const isa::DecodeResult decoded =
        isa::decodeProgram(bytes.data(), bytes.size());
    if (!decoded.ok || decoded.code.empty()) {
        ++statistics.decodeFailed;
        return false;
    }

    isa::TestProgram program = wrapSequence(decoded.code, "snap");

    std::uint64_t newFeatures = 0;
    isa::Emulator emu;
    emu.setCoverageHook([&](const isa::Inst &, const isa::InstrDesc &d,
                            std::uint64_t flags, bool taken) {
        const std::size_t feature =
            ((static_cast<std::size_t>(d.id) << 8) |
             ((flags & 0xC1u) << 1) | (taken ? 1u : 0u)) %
            featureMap.size();
        if (!featureMap[feature]) {
            featureMap[feature] = true;
            ++newFeatures;
        }
    });

    isa::Emulator::Options opts;
    opts.stepLimit = cfg.proxyStepLimit;
    opts.nondetSeed = 1;
    const isa::EmuResult first = emu.run(program, opts);
    if (first.crashed()) {
        ++statistics.crashed;
        return false;
    }

    // Determinism filter: a second run with a different entropy seed
    // must produce the identical signature.
    isa::Emulator plain;
    isa::Emulator::Options opts2;
    opts2.stepLimit = cfg.proxyStepLimit;
    opts2.nondetSeed = 2;
    const isa::EmuResult second = plain.run(program, opts2);
    if (second.crashed() || second.signature != first.signature) {
        ++statistics.nonDeterministic;
        return false;
    }

    code_out = decoded.code;
    features_out = newFeatures;
    return true;
}

void
SiliFuzz::fuzz()
{
    Rng rng(rngState);

    // Seed corpus: random byte blobs plus a handful of well-formed
    // instruction encodings (the role existing corpora play when
    // bootstrapping the real tool).
    if (corpus.empty()) {
        for (int i = 0; i < 32; ++i) {
            std::vector<std::uint8_t> blob(8 + rng.below(
                                               cfg.snapshotBytes - 8));
            for (auto &b : blob)
                b = static_cast<std::uint8_t>(rng.next());
            corpus.push_back(std::move(blob));
        }
        for (int i = 0; i < 24; ++i) {
            std::vector<isa::Inst> code;
            const unsigned len = 2 + rng.below(6);
            for (unsigned k = 0; k < len; ++k) {
                const auto &desc = isa::isaTable().desc(
                    static_cast<std::uint16_t>(
                        rng.below(isa::isaTable().size())));
                isa::Inst inst;
                inst.descId = desc.id;
                for (int o = 0; o < desc.numOperands; ++o) {
                    const auto &spec = desc.operands[o];
                    auto &op = inst.ops[o];
                    op.kind = spec.kind;
                    if (spec.kind == isa::OperandKind::Gpr ||
                        spec.kind == isa::OperandKind::Xmm) {
                        op.reg = static_cast<std::uint8_t>(
                            rng.below(16));
                    } else if (spec.kind == isa::OperandKind::Imm) {
                        op.imm = static_cast<std::int64_t>(
                            rng.next() & 0xFF);
                    } else if (spec.kind == isa::OperandKind::Mem) {
                        op.mem.base = isa::RSI;
                        op.mem.disp = static_cast<std::int32_t>(
                            rng.below(kRegionSize - 16));
                    }
                }
                if (desc.isBranch) {
                    inst.branchTarget =
                        static_cast<std::int32_t>(k + 1);
                    inst.ops[0].imm = 0;
                }
                code.push_back(inst);
            }
            corpus.push_back(isa::encodeProgram(code));
        }
    }

    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        // Pick a parent and mutate its raw bytes.
        std::vector<std::uint8_t> bytes =
            corpus[rng.below(corpus.size())];

        const unsigned numMutations = 1 + rng.below(4);
        for (unsigned m = 0; m < numMutations; ++m) {
            switch (rng.below(4)) {
              case 0: // byte overwrite
                if (!bytes.empty())
                    bytes[rng.below(bytes.size())] =
                        static_cast<std::uint8_t>(rng.next());
                break;
              case 1: // bit flip
                if (!bytes.empty())
                    bytes[rng.below(bytes.size())] ^=
                        static_cast<std::uint8_t>(1u << rng.below(8));
                break;
              case 2: // insert
                if (bytes.size() < cfg.snapshotBytes)
                    bytes.insert(bytes.begin() + rng.below(
                                                     bytes.size() + 1),
                                 static_cast<std::uint8_t>(rng.next()));
                break;
              default: // splice with another corpus entry
                {
                    const auto &other =
                        corpus[rng.below(corpus.size())];
                    if (!other.empty() && !bytes.empty()) {
                        const std::size_t srcPos =
                            rng.below(other.size());
                        const std::size_t dstPos =
                            rng.below(bytes.size());
                        const std::size_t len = std::min(
                            {other.size() - srcPos,
                             bytes.size() - dstPos,
                             static_cast<std::size_t>(1 +
                                                      rng.below(16))});
                        std::copy(other.begin() + srcPos,
                                  other.begin() + srcPos + len,
                                  bytes.begin() + dstPos);
                    }
                }
                break;
            }
        }
        if (bytes.size() > cfg.snapshotBytes)
            bytes.resize(cfg.snapshotBytes);

        std::vector<isa::Inst> code;
        std::uint64_t newFeatures = 0;
        if (!validate(bytes, code, newFeatures))
            continue;

        ++statistics.kept;
        statistics.runnableInstructions += code.size();
        keptSnapshots.push_back(code);
        if (newFeatures > 0)
            corpus.push_back(bytes); // coverage-guided corpus growth
    }
    rngState = rng.next();
}

std::vector<isa::TestProgram>
SiliFuzz::makeTests(unsigned num_tests) const
{
    std::vector<isa::TestProgram> tests;
    if (keptSnapshots.empty())
        return tests;

    Rng rng(cfg.seed ^ 0xA66);
    for (unsigned t = 0; t < num_tests; ++t) {
        std::vector<isa::Inst> aggregate;
        // Grow the aggregate snapshot by snapshot, validating after
        // each append: register state carried across snapshots can
        // turn an individually-safe sequence into a crashing one.
        unsigned attempts = 0;
        while (aggregate.size() < cfg.aggregateInstructions &&
               attempts < keptSnapshots.size() * 4) {
            ++attempts;
            const auto &snap =
                keptSnapshots[rng.below(keptSnapshots.size())];
            std::vector<isa::Inst> candidate = aggregate;
            const std::int32_t offset =
                static_cast<std::int32_t>(candidate.size());
            for (isa::Inst inst : snap) {
                if (inst.branchTarget >= 0)
                    inst.branchTarget += offset;
                candidate.push_back(inst);
            }
            isa::TestProgram probe = wrapSequence(
                candidate, "silifuzz-" + std::to_string(t));
            isa::Emulator::Options opts;
            opts.stepLimit =
                8 * cfg.aggregateInstructions + 4096;
            opts.nondetSeed = 1;
            const isa::EmuResult r = isa::Emulator().run(probe, opts);
            if (r.crashed())
                continue; // drop this snapshot, try another
            aggregate = std::move(candidate);
        }
        if (!aggregate.empty()) {
            tests.push_back(wrapSequence(
                aggregate, "silifuzz-" + std::to_string(t)));
        }
    }
    return tests;
}

} // namespace harpo::baselines
