/**
 * @file
 * Structural stuck-at fault collapsing.
 *
 * A gate-level campaign's fault universe is every logic node times
 * {stuck-at-0, stuck-at-1}. Most of those faults are provably
 * indistinguishable at the netlist boundary: forcing an AND gate's
 * fanout-free input to 0 produces the exact same faulty function as
 * forcing its output to 0, a NOT gate merely swaps the two stuck
 * values of its fanout-free operand, and a fault on a node with no
 * path to any output (or whose stuck value the node already computes
 * on every input) never changes an output at all. Classic
 * equivalence/dominance fault collapsing exploits this to shrink
 * stuck-at lists 2-4x before a single simulation runs.
 *
 * CollapsedFaultSet is the result of that static analysis over a
 * Netlist: a partition of the fault universe into equivalence classes
 * (one representative injected per class, a members table expanding
 * outcomes back to the full universe), a per-class untestable flag
 * (the class of faults whose faulty function *is* the fault-free
 * function), and a dominance relation between classes (A dominates B
 * means every input pattern detecting B at the boundary also detects
 * A). DESIGN.md §13 records the soundness argument for each rule at
 * the forced-node boundary; the campaign layer uses equivalence for
 * exact outcome expansion and dominance only in the masked direction
 * (skipping divergence replays whose result is already implied).
 */

#ifndef HARPOCRATES_GATES_FAULT_COLLAPSE_HH
#define HARPOCRATES_GATES_FAULT_COLLAPSE_HH

#include <cstdint>
#include <vector>

#include "gates/netlist.hh"

namespace harpo::gates
{

/** One stuck-at fault of a netlist's fault universe. */
struct StuckFault
{
    Netlist::NodeId gate = 0;
    bool stuckValue = false;

    friend bool
    operator==(const StuckFault &x, const StuckFault &y)
    {
        return x.gate == y.gate && x.stuckValue == y.stuckValue;
    }
};

/**
 * The collapsed view of a netlist's stuck-at fault universe.
 *
 * Built once per netlist by build(); immutable afterwards, safe to
 * share across threads. Class ids are dense [0, numClasses());
 * representatives are deterministic (the member with the smallest
 * (gate, stuckValue) key), so two builds over the same netlist
 * produce identical partitions.
 */
class CollapsedFaultSet
{
  public:
    using ClassId = std::uint32_t;

    /** Run the structural analysis over @p netlist. */
    static CollapsedFaultSet build(const Netlist &netlist);

    /** Size of the uncollapsed universe: 2 * |logic gates|. */
    std::size_t numFaults() const { return universe; }

    /** Number of equivalence classes (== number of representatives). */
    std::size_t numClasses() const { return reps.size(); }

    /** universe / classes; >= 1, higher is better. */
    double
    collapseRatio() const
    {
        return reps.empty()
                   ? 1.0
                   : static_cast<double>(universe) /
                         static_cast<double>(reps.size());
    }

    /** Faults proven equivalent to the fault-free circuit (all in the
     *  single untestable class, when one exists). */
    std::size_t numUntestableFaults() const { return untestableFaults; }

    /**
     * Class of the fault forcing @p gate to @p stuck_value.
     * @throws harpo::Error (Config) when @p gate is not a logic gate
     *         of the analyzed netlist.
     */
    ClassId classOf(Netlist::NodeId gate, bool stuck_value) const;

    /** The injected representative of class @p cls. */
    const StuckFault &representative(ClassId cls) const;

    /** All universe faults of class @p cls, ascending by (gate,
     *  stuckValue); always contains representative(cls). */
    const std::vector<StuckFault> &members(ClassId cls) const;

    /** True when every fault in @p cls has a faulty function identical
     *  to the fault-free circuit (never detectable at the boundary). */
    bool untestable(ClassId cls) const;

    /** Classes directly dominating @p cls: every pattern that detects
     *  @p cls at the boundary also detects each of them. Transitive
     *  closure is the caller's job (the lists form a DAG). */
    const std::vector<ClassId> &dominators(ClassId cls) const;

    /** Total number of direct dominance edges between classes. */
    std::size_t
    numDominanceEdges() const
    {
        std::size_t n = 0;
        for (const auto &d : dominatorLists)
            n += d.size();
        return n;
    }

  private:
    static constexpr std::uint32_t npos = ~0u;

    std::vector<std::uint32_t> classIndex; ///< fid -> ClassId or npos
    std::vector<StuckFault> reps;
    std::vector<std::vector<StuckFault>> memberLists;
    std::vector<std::uint8_t> untestableFlags;
    std::vector<std::vector<ClassId>> dominatorLists;
    std::size_t universe = 0;
    std::size_t untestableFaults = 0;
    std::size_t nodeCount = 0;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_FAULT_COLLAPSE_HH
