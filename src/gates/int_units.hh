/**
 * @file
 * Gate-level integer functional units: a 64-bit Kogge-Stone adder and a
 * 64x64 -> 128-bit array multiplier. These are the structural models
 * the permanent stuck-at fault campaigns inject into (paper III-C).
 */

#ifndef HARPOCRATES_GATES_INT_UNITS_HH
#define HARPOCRATES_GATES_INT_UNITS_HH

#include <cstdint>

#include "gates/netlist.hh"

namespace harpo::gates
{

/** 64-bit parallel-prefix (Kogge-Stone) adder with carry-in/out. */
class IntAdderCircuit
{
  public:
    IntAdderCircuit();

    struct Result
    {
        std::uint64_t sum = 0;
        bool carryOut = false;
    };

    /** Evaluate, optionally with one gate stuck at @p stuck_value. */
    Result compute(std::uint64_t a, std::uint64_t b, bool carry_in,
                   std::int64_t stuck_gate = Netlist::noFault,
                   bool stuck_value = false) const;

    /** Bit-parallel: evaluate one operation across 64 lanes, each
     *  lane carrying the stuck-at forces in @p faults (sorted by gate
     *  id). @p outputs receives the packed per-lane output bits;
     *  returns the mask of lanes whose {sum, carry-out} differ from
     *  lane 0 (keep lane 0 fault-free as the golden reference). */
    std::uint64_t
    computeBatch(std::uint64_t a, std::uint64_t b, bool carry_in,
                 const std::vector<Netlist::LaneFault> &faults,
                 std::vector<std::uint64_t> &outputs,
                 std::vector<std::uint64_t> &scratch) const;

    const Netlist &netlist() const { return nl; }

  private:
    Netlist nl;
};

/** 64x64 -> 128-bit unsigned array multiplier. */
class IntMultiplierCircuit
{
  public:
    IntMultiplierCircuit();

    struct Result
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    Result compute(std::uint64_t a, std::uint64_t b,
                   std::int64_t stuck_gate = Netlist::noFault,
                   bool stuck_value = false) const;

    /** Bit-parallel 64-lane evaluation; see IntAdderCircuit. */
    std::uint64_t
    computeBatch(std::uint64_t a, std::uint64_t b,
                 const std::vector<Netlist::LaneFault> &faults,
                 std::vector<std::uint64_t> &outputs,
                 std::vector<std::uint64_t> &scratch) const;

    const Netlist &netlist() const { return nl; }

  private:
    Netlist nl;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_INT_UNITS_HH
