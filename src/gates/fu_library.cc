#include "gates/fu_library.hh"

#include "common/logging.hh"

namespace harpo::gates
{

const FuLibrary &
FuLibrary::instance()
{
    static const FuLibrary library;
    return library;
}

const Netlist &
FuLibrary::netlistFor(isa::FuCircuit circuit) const
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd:
        return intAdd.netlist();
      case isa::FuCircuit::IntMul:
        return intMul.netlist();
      case isa::FuCircuit::FpAdd:
        return fpAdd.netlist();
      case isa::FuCircuit::FpMul:
        return fpMul.netlist();
      default:
        panic("netlistFor: no circuit for FuCircuit::None");
    }
}

std::uint64_t
FuLibrary::computeBatchFor(isa::FuCircuit circuit, std::uint64_t a,
                           std::uint64_t b, bool carry_in,
                           const std::vector<Netlist::LaneFault> &faults,
                           std::vector<std::uint64_t> &outputs,
                           std::vector<std::uint64_t> &scratch) const
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd:
        return intAdd.computeBatch(a, b, carry_in, faults, outputs,
                                   scratch);
      case isa::FuCircuit::IntMul:
        return intMul.computeBatch(a, b, faults, outputs, scratch);
      case isa::FuCircuit::FpAdd:
        return fpAdd.computeBatch(a, b, faults, outputs, scratch);
      case isa::FuCircuit::FpMul:
        return fpMul.computeBatch(a, b, faults, outputs, scratch);
      default:
        panic("computeBatchFor: no circuit for FuCircuit::None");
    }
}

} // namespace harpo::gates
