#include "gates/fu_library.hh"

#include "common/logging.hh"

namespace harpo::gates
{

const FuLibrary &
FuLibrary::instance()
{
    static const FuLibrary library;
    return library;
}

const Netlist &
FuLibrary::netlistFor(isa::FuCircuit circuit) const
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd:
        return intAdd.netlist();
      case isa::FuCircuit::IntMul:
        return intMul.netlist();
      case isa::FuCircuit::FpAdd:
        return fpAdd.netlist();
      case isa::FuCircuit::FpMul:
        return fpMul.netlist();
      default:
        panic("netlistFor: no circuit for FuCircuit::None");
    }
}

} // namespace harpo::gates
