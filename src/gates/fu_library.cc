#include "gates/fu_library.hh"

#include <cstdio>

#include "common/logging.hh"
#include "telemetry/metrics.hh"

namespace harpo::gates
{

namespace
{

const char *
circuitName(isa::FuCircuit circuit)
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd: return "int_add";
      case isa::FuCircuit::IntMul: return "int_mul";
      case isa::FuCircuit::FpAdd: return "fp_add";
      case isa::FuCircuit::FpMul: return "fp_mul";
      default: return "none";
    }
}

constexpr isa::FuCircuit kAllCircuits[4] = {
    isa::FuCircuit::IntAdd,
    isa::FuCircuit::IntMul,
    isa::FuCircuit::FpAdd,
    isa::FuCircuit::FpMul,
};

} // namespace

const FuLibrary &
FuLibrary::instance()
{
    static const FuLibrary library;
    return library;
}

const Netlist &
FuLibrary::netlistFor(isa::FuCircuit circuit) const
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd:
        return intAdd.netlist();
      case isa::FuCircuit::IntMul:
        return intMul.netlist();
      case isa::FuCircuit::FpAdd:
        return fpAdd.netlist();
      case isa::FuCircuit::FpMul:
        return fpMul.netlist();
      default:
        panic("netlistFor: no circuit for FuCircuit::None");
    }
}

const CollapsedFaultSet &
FuLibrary::collapsedFor(isa::FuCircuit circuit) const
{
    const int idx = static_cast<int>(circuit) - 1;
    panicIf(idx < 0 || idx >= 4,
            "collapsedFor: no circuit for FuCircuit::None");
    std::call_once(collapseOnce[idx], [&] {
        auto set = std::make_unique<CollapsedFaultSet>(
            CollapsedFaultSet::build(netlistFor(circuit)));
        // Static per-unit ratios: gauges, set once per process. The
        // dynamic per-campaign counts (collapse.classes/pruned) are
        // counters incremented by the campaign layer.
        auto &reg = telemetry::MetricsRegistry::instance();
        const std::string prefix =
            std::string("collapse.") + circuitName(circuit);
        telemetry::setGauge(
            reg.gauge(prefix + ".faults"),
            static_cast<std::int64_t>(set->numFaults()));
        telemetry::setGauge(
            reg.gauge(prefix + ".classes"),
            static_cast<std::int64_t>(set->numClasses()));
        telemetry::setGauge(
            reg.gauge(prefix + ".ratio_x1000"),
            static_cast<std::int64_t>(set->collapseRatio() * 1000.0));
        collapseCache[idx] = std::move(set);
    });
    return *collapseCache[idx];
}

std::string
FuLibrary::collapseSummary() const
{
    auto &reg = telemetry::MetricsRegistry::instance();
    std::string out =
        "fault collapsing (unit: faults classes ratio untestable "
        "dominance-edges)\n";
    for (const isa::FuCircuit circuit : kAllCircuits) {
        const CollapsedFaultSet &set = collapsedFor(circuit);
        char line[160];
        std::snprintf(line, sizeof line,
                      "  %-8s %6zu -> %6zu  (%.2fx, %zu untestable, "
                      "%zu dom edges)\n",
                      circuitName(circuit), set.numFaults(),
                      set.numClasses(), set.collapseRatio(),
                      set.numUntestableFaults(),
                      set.numDominanceEdges());
        out += line;
    }
    const std::uint64_t classes =
        reg.counterValue(reg.counter("collapse.classes"));
    const std::uint64_t pruned =
        reg.counterValue(reg.counter("collapse.pruned"));
    const std::uint64_t domSkips =
        reg.counterValue(reg.counter("collapse.dominance_skips"));
    char tail[200];
    std::snprintf(tail, sizeof tail,
                  "  campaigns: %llu representatives injected, %llu "
                  "sampled faults pruned, %llu dominance replay "
                  "skips\n",
                  static_cast<unsigned long long>(classes),
                  static_cast<unsigned long long>(pruned),
                  static_cast<unsigned long long>(domSkips));
    out += tail;
    return out;
}

std::uint64_t
FuLibrary::computeBatchFor(isa::FuCircuit circuit, std::uint64_t a,
                           std::uint64_t b, bool carry_in,
                           const std::vector<Netlist::LaneFault> &faults,
                           std::vector<std::uint64_t> &outputs,
                           std::vector<std::uint64_t> &scratch) const
{
    switch (circuit) {
      case isa::FuCircuit::IntAdd:
        return intAdd.computeBatch(a, b, carry_in, faults, outputs,
                                   scratch);
      case isa::FuCircuit::IntMul:
        return intMul.computeBatch(a, b, faults, outputs, scratch);
      case isa::FuCircuit::FpAdd:
        return fpAdd.computeBatch(a, b, faults, outputs, scratch);
      case isa::FuCircuit::FpMul:
        return fpMul.computeBatch(a, b, faults, outputs, scratch);
      default:
        panic("computeBatchFor: no circuit for FuCircuit::None");
    }
}

} // namespace harpo::gates
