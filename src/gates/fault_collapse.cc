#include "gates/fault_collapse.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "resilience/error.hh"

namespace harpo::gates
{

namespace
{

// Fault ids pack the universe densely: fid = 2 * node + stuckValue.
// One extra sentinel element stands for the fault-free circuit;
// every fault united with it is provably untestable (its faulty
// function is the fault-free function).
constexpr std::uint32_t
fid(Netlist::NodeId gate, bool stuck_value)
{
    return 2 * gate + (stuck_value ? 1 : 0);
}

/** Union-find with path halving; unite keeps the smaller root so the
 *  partition is deterministic regardless of rule order. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent[i] = static_cast<std::uint32_t>(i);
    }

    std::uint32_t
    find(std::uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(std::uint32_t x, std::uint32_t y)
    {
        x = find(x);
        y = find(y);
        if (x == y)
            return;
        if (x > y)
            std::swap(x, y);
        parent[y] = x;
    }

  private:
    std::vector<std::uint32_t> parent;
};

// Constant lattice for the forward value pass: -1 unknown, else 0/1.
using ConstVal = std::int8_t;
constexpr ConstVal kUnknown = -1;

ConstVal
invertConst(ConstVal v)
{
    return v == kUnknown ? kUnknown : static_cast<ConstVal>(1 - v);
}

/** Constant value of gate @p g given operand values, or kUnknown.
 *  Shared-operand gates (a == b) fold even with unknown operands:
 *  Xor(a,a) is 0 and Xnor(a,a) is 1 for every input. */
ConstVal
constEval(const Gate &g, ConstVal a, ConstVal b)
{
    const bool shared = g.a == g.b;
    switch (g.kind) {
      case GateKind::Const0: return 0;
      case GateKind::Const1: return 1;
      case GateKind::Input: return kUnknown;
      case GateKind::Buf: return a;
      case GateKind::Not: return invertConst(a);
      case GateKind::And:
        if (shared)
            return a;
        if (a == 0 || b == 0)
            return 0;
        return (a == 1 && b == 1) ? 1 : kUnknown;
      case GateKind::Or:
        if (shared)
            return a;
        if (a == 1 || b == 1)
            return 1;
        return (a == 0 && b == 0) ? 0 : kUnknown;
      case GateKind::Nand:
        if (shared)
            return invertConst(a);
        if (a == 0 || b == 0)
            return 1;
        return (a == 1 && b == 1) ? 0 : kUnknown;
      case GateKind::Nor:
        if (shared)
            return invertConst(a);
        if (a == 1 || b == 1)
            return 0;
        return (a == 0 && b == 0) ? 1 : kUnknown;
      case GateKind::Xor:
        if (shared)
            return 0;
        if (a == kUnknown || b == kUnknown)
            return kUnknown;
        return static_cast<ConstVal>(a ^ b);
      case GateKind::Xnor:
        if (shared)
            return 1;
        if (a == kUnknown || b == kUnknown)
            return kUnknown;
        return static_cast<ConstVal>(1 - (a ^ b));
    }
    return kUnknown;
}

/** How a binary gate looks from one operand when the *other* operand
 *  is a known constant (or when both pins share one node). */
enum class UnaryView : std::uint8_t
{
    None,   ///< no reduction applies
    Buf,    ///< output follows the operand
    Not,    ///< output is the operand inverted
    Blocked ///< output never depends on the operand
};

UnaryView
viewWithConstOther(GateKind kind, ConstVal other)
{
    if (other == kUnknown)
        return UnaryView::None;
    const bool one = other == 1;
    switch (kind) {
      case GateKind::And: return one ? UnaryView::Buf : UnaryView::Blocked;
      case GateKind::Or: return one ? UnaryView::Blocked : UnaryView::Buf;
      case GateKind::Nand:
        return one ? UnaryView::Not : UnaryView::Blocked;
      case GateKind::Nor: return one ? UnaryView::Blocked : UnaryView::Not;
      case GateKind::Xor: return one ? UnaryView::Not : UnaryView::Buf;
      case GateKind::Xnor: return one ? UnaryView::Buf : UnaryView::Not;
      default: return UnaryView::None;
    }
}

/** Shared-operand view: And(a,a)/Or(a,a) buffer a; Nand/Nor invert
 *  it; Xor/Xnor are constant (handled by the value pass). */
UnaryView
viewShared(GateKind kind)
{
    switch (kind) {
      case GateKind::And:
      case GateKind::Or: return UnaryView::Buf;
      case GateKind::Nand:
      case GateKind::Nor: return UnaryView::Not;
      case GateKind::Xor:
      case GateKind::Xnor: return UnaryView::Blocked;
      default: return UnaryView::None;
    }
}

/** Standard controlling-value rules: a gate with controlling operand
 *  value @p ctrl produces @p out_at_ctrl whenever any operand takes
 *  it. Xor/Xnor have no controlling value. */
bool
controllingRules(GateKind kind, bool &ctrl, bool &out_at_ctrl)
{
    switch (kind) {
      case GateKind::And: ctrl = false; out_at_ctrl = false; return true;
      case GateKind::Or: ctrl = true; out_at_ctrl = true; return true;
      case GateKind::Nand: ctrl = false; out_at_ctrl = true; return true;
      case GateKind::Nor: ctrl = true; out_at_ctrl = false; return true;
      default: return false;
    }
}

bool
isBinaryKind(GateKind kind)
{
    switch (kind) {
      case GateKind::And:
      case GateKind::Or:
      case GateKind::Xor:
      case GateKind::Nand:
      case GateKind::Nor:
      case GateKind::Xnor: return true;
      default: return false;
    }
}

} // namespace

CollapsedFaultSet
CollapsedFaultSet::build(const Netlist &netlist)
{
    const std::size_t n = netlist.numNodes();
    const std::vector<Netlist::NodeId> &logicIds = netlist.logicGates();

    CollapsedFaultSet out;
    out.nodeCount = n;
    out.universe = 2 * logicIds.size();

    std::vector<std::uint8_t> isLogic(n, 0);
    for (const Netlist::NodeId id : logicIds)
        isLogic[id] = 1;

    std::vector<std::uint8_t> isOutput(n, 0);
    for (const Netlist::NodeId id : netlist.outputNodes())
        isOutput[id] = 1;

    // Forward constant pass (nodes are topologically ordered).
    std::vector<ConstVal> constVal(n, kUnknown);
    for (std::size_t i = 0; i < n; ++i) {
        const Gate &g = netlist.gateAt(static_cast<Netlist::NodeId>(i));
        const ConstVal a = isLogic[i] ? constVal[g.a] : kUnknown;
        const ConstVal b =
            isBinaryKind(g.kind) ? constVal[g.b] : kUnknown;
        constVal[i] = constEval(g, a, b);
    }

    // Distinct consumer gates per node: the fold rules only apply to
    // fanout-free nodes (exactly one consumer, and the node is not
    // itself observed as a primary output).
    std::vector<std::uint32_t> consumerCount(n, 0);
    for (const Netlist::NodeId id : logicIds) {
        const Gate &g = netlist.gateAt(id);
        ++consumerCount[g.a];
        if (isBinaryKind(g.kind) && g.b != g.a)
            ++consumerCount[g.b];
    }

    // Reverse reachability from the marked outputs: faults on nodes
    // that reach no output can never change the boundary.
    std::vector<std::uint8_t> observable(n, 0);
    {
        std::vector<Netlist::NodeId> stack(netlist.outputNodes());
        while (!stack.empty()) {
            const Netlist::NodeId id = stack.back();
            stack.pop_back();
            if (observable[id])
                continue;
            observable[id] = 1;
            const Gate &g = netlist.gateAt(id);
            if (g.kind == GateKind::Buf || g.kind == GateKind::Not ||
                isBinaryKind(g.kind)) {
                stack.push_back(g.a);
                if (isBinaryKind(g.kind) && g.b != g.a)
                    stack.push_back(g.b);
            }
        }
    }

    const std::uint32_t sentinel = static_cast<std::uint32_t>(2 * n);
    UnionFind uf(2 * n + 1);

    // Faults equivalent to the fault-free circuit: any fault on an
    // unobservable node, and forcing a constant-valued node to the
    // value it already computes on every input.
    for (const Netlist::NodeId id : logicIds) {
        if (!observable[id]) {
            uf.unite(fid(id, false), sentinel);
            uf.unite(fid(id, true), sentinel);
        } else if (constVal[id] != kUnknown) {
            uf.unite(fid(id, constVal[id] == 1), sentinel);
        }
    }

    const auto foldable = [&](Netlist::NodeId a) {
        return isLogic[a] && !isOutput[a] && consumerCount[a] == 1;
    };
    const auto applyView = [&](UnaryView view, Netlist::NodeId a,
                               Netlist::NodeId g) {
        switch (view) {
          case UnaryView::Buf:
            uf.unite(fid(a, false), fid(g, false));
            uf.unite(fid(a, true), fid(g, true));
            break;
          case UnaryView::Not:
            uf.unite(fid(a, false), fid(g, true));
            uf.unite(fid(a, true), fid(g, false));
            break;
          case UnaryView::Blocked:
            // The gate's output never depends on a, and a feeds
            // nothing else: both faults on a are untestable.
            uf.unite(fid(a, false), sentinel);
            uf.unite(fid(a, true), sentinel);
            break;
          case UnaryView::None: break;
        }
    };

    // (dominated fid, dominator fid) pairs, mapped to classes below.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> domPairs;

    for (const Netlist::NodeId gId : logicIds) {
        const Gate &g = netlist.gateAt(gId);
        if (g.kind == GateKind::Buf || g.kind == GateKind::Not) {
            if (foldable(g.a))
                applyView(g.kind == GateKind::Buf ? UnaryView::Buf
                                                  : UnaryView::Not,
                          g.a, gId);
            continue;
        }
        if (!isBinaryKind(g.kind))
            continue;
        if (g.a == g.b) {
            if (foldable(g.a))
                applyView(viewShared(g.kind), g.a, gId);
            continue;
        }
        const Netlist::NodeId ops[2] = {g.a, g.b};
        for (int k = 0; k < 2; ++k) {
            const Netlist::NodeId x = ops[k];
            const Netlist::NodeId other = ops[1 - k];
            if (!foldable(x))
                continue;
            const UnaryView view =
                viewWithConstOther(g.kind, constVal[other]);
            if (view != UnaryView::None) {
                // A constant sibling reduces the gate to a unary view
                // of x; that equivalence subsumes the controlling-value
                // rules below.
                applyView(view, x, gId);
                continue;
            }
            bool ctrl = false;
            bool outAtCtrl = false;
            if (controllingRules(g.kind, ctrl, outAtCtrl)) {
                // x stuck at the controlling value forces the exact
                // output the gate produces for it: equivalent.
                uf.unite(fid(x, ctrl), fid(gId, outAtCtrl));
                // Detecting x stuck at the non-controlling value needs
                // the sibling non-controlling, which makes the effect
                // at the boundary identical to the output stuck at
                // !outAtCtrl: dominance.
                domPairs.emplace_back(fid(x, !ctrl),
                                      fid(gId, !outAtCtrl));
            }
        }
    }

    // Extract dense classes. logicIds ascends, so the first member
    // seen per root is the smallest (gate, stuckValue) key: the
    // deterministic representative.
    out.classIndex.assign(2 * n, npos);
    std::vector<std::uint32_t> rootClass(2 * n + 1, npos);
    for (const Netlist::NodeId id : logicIds) {
        for (int v = 0; v < 2; ++v) {
            const std::uint32_t f = fid(id, v == 1);
            const std::uint32_t root = uf.find(f);
            std::uint32_t cls = rootClass[root];
            if (cls == npos) {
                cls = static_cast<std::uint32_t>(out.reps.size());
                rootClass[root] = cls;
                out.reps.push_back({id, v == 1});
                out.memberLists.emplace_back();
            }
            out.classIndex[f] = cls;
            out.memberLists[cls].push_back({id, v == 1});
        }
    }

    out.untestableFlags.assign(out.reps.size(), 0);
    const std::uint32_t sentRoot = uf.find(sentinel);
    if (rootClass[sentRoot] != npos) {
        const std::uint32_t cls = rootClass[sentRoot];
        out.untestableFlags[cls] = 1;
        out.untestableFaults = out.memberLists[cls].size();
    }

    out.dominatorLists.assign(out.reps.size(), {});
    for (const auto &[bFid, aFid] : domPairs) {
        const std::uint32_t cb = out.classIndex[bFid];
        const std::uint32_t ca = out.classIndex[aFid];
        if (cb != ca)
            out.dominatorLists[cb].push_back(ca);
    }
    for (auto &list : out.dominatorLists) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    std::size_t total = 0;
    for (const auto &m : out.memberLists)
        total += m.size();
    panicIf(total != out.universe,
            "CollapsedFaultSet: member lists do not partition the "
            "fault universe");
    return out;
}

CollapsedFaultSet::ClassId
CollapsedFaultSet::classOf(Netlist::NodeId gate, bool stuck_value) const
{
    if (gate >= nodeCount || classIndex[fid(gate, stuck_value)] == npos)
        throw Error::config(
            "CollapsedFaultSet::classOf: node " + std::to_string(gate) +
            " is not a logic gate of the analyzed netlist");
    return classIndex[fid(gate, stuck_value)];
}

const StuckFault &
CollapsedFaultSet::representative(ClassId cls) const
{
    panicIf(cls >= reps.size(),
            "CollapsedFaultSet::representative: class out of range");
    return reps[cls];
}

const std::vector<StuckFault> &
CollapsedFaultSet::members(ClassId cls) const
{
    panicIf(cls >= memberLists.size(),
            "CollapsedFaultSet::members: class out of range");
    return memberLists[cls];
}

bool
CollapsedFaultSet::untestable(ClassId cls) const
{
    panicIf(cls >= untestableFlags.size(),
            "CollapsedFaultSet::untestable: class out of range");
    return untestableFlags[cls] != 0;
}

const std::vector<CollapsedFaultSet::ClassId> &
CollapsedFaultSet::dominators(ClassId cls) const
{
    panicIf(cls >= dominatorLists.size(),
            "CollapsedFaultSet::dominators: class out of range");
    return dominatorLists[cls];
}

} // namespace harpo::gates
