#include "gates/fp_units.hh"

#include "common/softfloat.hh"
#include "gates/circuit_builder.hh"

namespace harpo::gates
{

namespace
{

using NodeId = Netlist::NodeId;

void
packWord(std::vector<std::uint8_t> &inputs, std::uint64_t v, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        inputs.push_back(static_cast<std::uint8_t>((v >> i) & 1));
}

std::uint64_t
unpackWord(const std::vector<std::uint8_t> &bits, unsigned lo, unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(bits[lo + i] & 1) << i;
    return v;
}

/** Unpacked fp64 operand classification signals. */
struct FpClass
{
    NodeId sign;
    Bus exp;    // 11 bits
    Bus frac;   // 52 bits
    NodeId isNan;
    NodeId isInf;
    NodeId isZero; // exp == 0: true zero or subnormal (DAZ)
};

FpClass
classify(CircuitBuilder &cb, const Bus &operand)
{
    FpClass c;
    c.sign = operand[63];
    c.exp = CircuitBuilder::slice(operand, 52, 11);
    c.frac = CircuitBuilder::slice(operand, 0, 52);
    const NodeId expAll = cb.reduceAnd(c.exp);
    const NodeId fracAny = cb.reduceOr(c.frac);
    c.isNan = cb.land(expAll, fracAny);
    c.isInf = cb.land(expAll, cb.lnot(fracAny));
    c.isZero = cb.lnot(cb.reduceOr(c.exp));
    return c;
}

/** Pack (sign, exp11, frac52) into a 64-bit result bus. */
Bus
packFp(const NodeId sign, const Bus &exp, const Bus &frac)
{
    Bus out = frac;
    out.insert(out.end(), exp.begin(), exp.end());
    out.push_back(sign);
    return out;
}

/** sign|0x000... : signed zero with a dynamic sign node. */
Bus
zeroFp(CircuitBuilder &cb, NodeId sign)
{
    return packFp(sign, cb.constBus(0, 11), cb.constBus(0, 52));
}

Bus
infFp(CircuitBuilder &cb, NodeId sign)
{
    return packFp(sign, cb.constBus(0x7FF, 11), cb.constBus(0, 52));
}

Bus
nanFp(CircuitBuilder &cb)
{
    return cb.constBus(kCanonicalNan, 64);
}

/**
 * Shared rounding/packing tail: round a 56-bit working significand
 * (mantissa [55..3], GRS [2..0]) to nearest-even, apply the mantissa
 * carry to the exponent, and pack with overflow-to-Inf and FTZ.
 *
 * @param exp13 13-bit two's-complement pre-round exponent.
 * @param ftz_pre Pre-round flush condition (exp13 <= 0 on the paths
 *        where the software model checks before rounding).
 */
Bus
roundPackCircuit(CircuitBuilder &cb, NodeId sign, const Bus &exp13,
                 const Bus &sig56, NodeId ftz_pre)
{
    const NodeId lsb = sig56[3];
    const NodeId guard = sig56[2];
    const NodeId rs = cb.lor(sig56[1], sig56[0]);
    const NodeId roundUp = cb.land(guard, cb.lor(rs, lsb));

    const Bus mant53 = CircuitBuilder::slice(sig56, 3, 53);
    const auto inc = cb.increment(mant53, roundUp);
    const NodeId mantCarry = inc.carryOut;
    // On carry the incremented mantissa is all zero; the result
    // mantissa is 1.000...0.
    Bus mantFinal(53);
    for (unsigned i = 0; i < 52; ++i)
        mantFinal[i] = cb.mux(mantCarry, inc.sum[i + 1], inc.sum[i]);
    mantFinal[52] = cb.mux(mantCarry, cb.one(), inc.sum[52]);

    const Bus expFinal = cb.increment(exp13, mantCarry).sum;

    // Overflow: expFinal >= 2047 (two's complement, non-negative).
    const NodeId expNeg = expFinal[12];
    const NodeId ge2047 =
        cb.rippleAdd(expFinal, cb.busNot(cb.constBus(2047, 13)), cb.one())
            .carryOut;
    const NodeId overflow = cb.land(ge2047, cb.lnot(expNeg));
    // Post-round flush: exponent non-positive.
    const NodeId expZero = cb.lnot(cb.reduceOr(expFinal));
    const NodeId ftzPost = cb.lor(expNeg, expZero);

    const Bus frac52 = CircuitBuilder::slice(mantFinal, 0, 52);
    const Bus exp11 = CircuitBuilder::slice(expFinal, 0, 11);
    Bus result = packFp(sign, exp11, frac52);
    result = cb.busMux(ftzPost, zeroFp(cb, sign), result);
    result = cb.busMux(overflow, infFp(cb, sign), result);
    result = cb.busMux(ftz_pre, zeroFp(cb, sign), result);
    return result;
}

/** DAZ view of an operand: subnormal encodings become signed zero. */
Bus
dazFp(CircuitBuilder &cb, const FpClass &c)
{
    const Bus frac = cb.busAndBit(c.frac, cb.lnot(c.isZero));
    return packFp(c.sign, c.exp, frac);
}

std::uint64_t
evaluate64(const Netlist &nl, std::uint64_t a, std::uint64_t b,
           std::int64_t stuck_gate, bool stuck_value)
{
    thread_local std::vector<std::uint8_t> scratch;
    thread_local std::vector<std::uint8_t> inputs;
    thread_local std::vector<std::uint8_t> outputs;
    inputs.clear();
    packWord(inputs, a, 64);
    packWord(inputs, b, 64);
    nl.evaluate(inputs, outputs, stuck_gate, stuck_value, scratch);
    return unpackWord(outputs, 0, 64);
}

std::uint64_t
evaluateBatch64(const Netlist &nl, std::uint64_t a, std::uint64_t b,
                const std::vector<Netlist::LaneFault> &faults,
                std::vector<std::uint64_t> &outputs,
                std::vector<std::uint64_t> &scratch)
{
    thread_local std::vector<std::uint64_t> inputs;
    inputs.clear();
    Netlist::broadcastInputs(inputs, a, 64);
    Netlist::broadcastInputs(inputs, b, 64);
    nl.evaluateBatch(inputs, outputs, faults, scratch);
    return Netlist::divergedLanes(outputs);
}

} // namespace

FpAdderCircuit::FpAdderCircuit()
{
    CircuitBuilder cb(nl);
    const Bus a = cb.inputBus(64);
    const Bus b = cb.inputBus(64);
    const FpClass ca = classify(cb, a);
    const FpClass cB = classify(cb, b);

    // ---- Magnitude compare ({exp, frac} as a 63-bit integer). ----
    const Bus magA = CircuitBuilder::concat(ca.frac, ca.exp);
    const Bus magB = CircuitBuilder::concat(cB.frac, cB.exp);
    const NodeId aGeB =
        cb.rippleAdd(magA, cb.busNot(magB), cb.one()).carryOut;

    const Bus expBig = cb.busMux(aGeB, ca.exp, cB.exp);
    const Bus expSmall = cb.busMux(aGeB, cB.exp, ca.exp);
    const Bus fracBig = cb.busMux(aGeB, ca.frac, cB.frac);
    const Bus fracSmall = cb.busMux(aGeB, cB.frac, ca.frac);
    const NodeId signBig = cb.mux(aGeB, ca.sign, cB.sign);
    const NodeId signSmall = cb.mux(aGeB, cB.sign, ca.sign);
    const NodeId effSub = cb.lxor(signBig, signSmall);

    // ---- 56-bit working significands: [GRS | frac52 | 1]. ----
    auto widen = [&](const Bus &frac) {
        Bus sig = cb.constBus(0, 3);
        sig.insert(sig.end(), frac.begin(), frac.end());
        sig.push_back(cb.one());
        return sig;
    };
    const Bus sigBig = widen(fracBig);
    const Bus sigSmallRaw = widen(fracSmall);

    // ---- Alignment shift with sticky (shift-right-jam). ----
    const Bus d11 =
        cb.rippleAdd(expBig, cb.busNot(expSmall), cb.one()).sum;
    const Bus dLow = CircuitBuilder::slice(d11, 0, 6);
    const NodeId dHigh = cb.reduceOr(CircuitBuilder::slice(d11, 6, 5));
    auto shift = cb.shiftRightSticky(sigSmallRaw, dLow);
    const NodeId allOut = cb.reduceOr(sigSmallRaw);
    Bus sigSmall = cb.busAndBit(shift.value, cb.lnot(dHigh));
    const NodeId sticky = cb.mux(dHigh, allOut, shift.sticky);
    sigSmall[0] = cb.lor(sigSmall[0], sticky);

    // ---- Add path: sum with carry-normalisation (right shift 1). ----
    const auto addRes = cb.koggeStoneAdd(sigBig, sigSmall, cb.zero());
    Bus addShifted(56);
    for (unsigned i = 0; i < 55; ++i)
        addShifted[i] = addRes.sum[i + 1];
    addShifted[55] = addRes.carryOut; // the carried-out one
    addShifted[0] = cb.lor(addShifted[0], addRes.sum[0]); // jam
    const Bus addSig = cb.busMux(addRes.carryOut, addShifted, addRes.sum);

    // ---- Sub path: difference, LZC normalisation. ----
    const auto subRes =
        cb.koggeStoneAdd(sigBig, cb.busNot(sigSmall), cb.one());
    const Bus diff = subRes.sum;
    const NodeId diffZero = cb.lnot(cb.reduceOr(diff));
    const Bus lzc = cb.leadingZeroCount(diff); // 6 bits
    const Bus normDiff = cb.shiftLeft(diff, lzc);

    const Bus sigPre = cb.busMux(effSub, normDiff, addSig);

    // ---- Exponent (13-bit two's complement). ----
    Bus expBig13 = expBig;
    expBig13.push_back(cb.zero());
    expBig13.push_back(cb.zero());
    const Bus expAdd13 = cb.increment(expBig13, addRes.carryOut).sum;
    Bus lzc13 = lzc;
    while (lzc13.size() < 13)
        lzc13.push_back(cb.zero());
    const Bus expSub13 =
        cb.rippleAdd(expBig13, cb.busNot(lzc13), cb.one()).sum;
    const Bus exp13 = cb.busMux(effSub, expSub13, expAdd13);

    // Pre-round flush (only reachable on the subtract path, matching
    // the software model's in-loop check).
    const NodeId expNegPre = exp13[12];
    const NodeId expZeroPre = cb.lnot(cb.reduceOr(exp13));
    const NodeId ftzPre =
        cb.land(effSub, cb.lor(expNegPre, expZeroPre));

    Bus result = roundPackCircuit(cb, signBig, exp13, sigPre, ftzPre);

    // Exact cancellation yields +0.
    result = cb.busMux(cb.land(effSub, diffZero), zeroFp(cb, cb.zero()),
                       result);

    // ---- Special-case cascade (lowest priority first). ----
    result = cb.busMux(cB.isZero, dazFp(cb, ca), result);
    result = cb.busMux(ca.isZero, dazFp(cb, cB), result);
    result = cb.busMux(cb.land(ca.isZero, cB.isZero),
                       zeroFp(cb, cb.land(ca.sign, cB.sign)), result);
    result = cb.busMux(cB.isInf, infFp(cb, cB.sign), result);
    result = cb.busMux(ca.isInf, infFp(cb, ca.sign), result);
    const NodeId oppInf = cb.land(cb.land(ca.isInf, cB.isInf),
                                  cb.lxor(ca.sign, cB.sign));
    const NodeId anyNan = cb.lor(cb.lor(ca.isNan, cB.isNan), oppInf);
    result = cb.busMux(anyNan, nanFp(cb), result);

    cb.markOutput(result);
}

std::uint64_t
FpAdderCircuit::compute(std::uint64_t a, std::uint64_t b,
                        std::int64_t stuck_gate, bool stuck_value) const
{
    return evaluate64(nl, a, b, stuck_gate, stuck_value);
}

std::uint64_t
FpAdderCircuit::computeBatch(std::uint64_t a, std::uint64_t b,
                             const std::vector<Netlist::LaneFault> &faults,
                             std::vector<std::uint64_t> &outputs,
                             std::vector<std::uint64_t> &scratch) const
{
    return evaluateBatch64(nl, a, b, faults, outputs, scratch);
}

FpMultiplierCircuit::FpMultiplierCircuit()
{
    CircuitBuilder cb(nl);
    const Bus a = cb.inputBus(64);
    const Bus b = cb.inputBus(64);
    const FpClass ca = classify(cb, a);
    const FpClass cB = classify(cb, b);
    const NodeId sign = cb.lxor(ca.sign, cB.sign);

    // ---- 53x53 significand product. ----
    Bus sigA = ca.frac;
    sigA.push_back(cb.one());
    Bus sigB = cB.frac;
    sigB.push_back(cb.one());
    const Bus prod = cb.multiply(sigA, sigB); // 106 bits
    const NodeId msb = prod[105];

    // ---- Exponent: expA + expB - 1023 (+1 if product >= 2). ----
    Bus expA13 = ca.exp;
    Bus expB13 = cB.exp;
    while (expA13.size() < 13) {
        expA13.push_back(cb.zero());
        expB13.push_back(cb.zero());
    }
    const Bus expSum = cb.rippleAdd(expA13, expB13, cb.zero()).sum;
    const Bus expBiased =
        cb.rippleAdd(expSum, cb.busNot(cb.constBus(1023, 13)), cb.one())
            .sum;
    const Bus exp13 = cb.increment(expBiased, msb).sum;

    // ---- Align the leading one to bit 55 of a 56-bit significand,
    // jamming the dropped low bits into bit 0. ----
    Bus sig56(56);
    for (unsigned i = 0; i < 56; ++i)
        sig56[i] = cb.mux(msb, prod[50 + i], prod[49 + i]);
    const NodeId stickyLow =
        cb.reduceOr(CircuitBuilder::slice(prod, 0, 49));
    const NodeId sticky =
        cb.lor(stickyLow, cb.land(msb, prod[49]));
    sig56[0] = cb.lor(sig56[0], sticky);

    // Pre-round flush: exp <= 0 (checked before rounding, matching
    // softMul64's ordering).
    const NodeId ftzPre =
        cb.lor(exp13[12], cb.lnot(cb.reduceOr(exp13)));

    Bus result = roundPackCircuit(cb, sign, exp13, sig56, ftzPre);

    // ---- Special-case cascade. ----
    const NodeId anyZero = cb.lor(ca.isZero, cB.isZero);
    const NodeId anyInf = cb.lor(ca.isInf, cB.isInf);
    result = cb.busMux(anyZero, zeroFp(cb, sign), result);
    result = cb.busMux(anyInf, infFp(cb, sign), result);
    const NodeId infTimesZero = cb.land(anyInf, anyZero);
    const NodeId anyNan =
        cb.lor(cb.lor(ca.isNan, cB.isNan), infTimesZero);
    result = cb.busMux(anyNan, nanFp(cb), result);

    cb.markOutput(result);
}

std::uint64_t
FpMultiplierCircuit::compute(std::uint64_t a, std::uint64_t b,
                             std::int64_t stuck_gate,
                             bool stuck_value) const
{
    return evaluate64(nl, a, b, stuck_gate, stuck_value);
}

std::uint64_t
FpMultiplierCircuit::computeBatch(
    std::uint64_t a, std::uint64_t b,
    const std::vector<Netlist::LaneFault> &faults,
    std::vector<std::uint64_t> &outputs,
    std::vector<std::uint64_t> &scratch) const
{
    return evaluateBatch64(nl, a, b, faults, outputs, scratch);
}

} // namespace harpo::gates
