#include "gates/circuit_builder.hh"

#include "common/logging.hh"

namespace harpo::gates
{

void
CircuitBuilder::noteKnown(NodeId id, Known k)
{
    if (known.size() <= id)
        known.resize(id + 1, static_cast<std::uint8_t>(Known::No));
    known[id] = static_cast<std::uint8_t>(k);
}

CircuitBuilder::Known
CircuitBuilder::knownOf(NodeId id) const
{
    if (id >= known.size())
        return Known::No;
    return static_cast<Known>(known[id]);
}

CircuitBuilder::NodeId
CircuitBuilder::zero()
{
    if (!haveConst0) {
        const0 = nl.constant(false);
        noteKnown(const0, Known::Zero);
        haveConst0 = true;
    }
    return const0;
}

CircuitBuilder::NodeId
CircuitBuilder::one()
{
    if (!haveConst1) {
        const1 = nl.constant(true);
        noteKnown(const1, Known::One);
        haveConst1 = true;
    }
    return const1;
}

CircuitBuilder::NodeId
CircuitBuilder::lnot(NodeId a)
{
    switch (knownOf(a)) {
      case Known::Zero: return one();
      case Known::One: return zero();
      default: return nl.unary(GateKind::Not, a);
    }
}

CircuitBuilder::NodeId
CircuitBuilder::land(NodeId a, NodeId b)
{
    const Known ka = knownOf(a), kb = knownOf(b);
    if (ka == Known::Zero || kb == Known::Zero)
        return zero();
    if (ka == Known::One)
        return b;
    if (kb == Known::One)
        return a;
    if (a == b)
        return a;
    return nl.binary(GateKind::And, a, b);
}

CircuitBuilder::NodeId
CircuitBuilder::lor(NodeId a, NodeId b)
{
    const Known ka = knownOf(a), kb = knownOf(b);
    if (ka == Known::One || kb == Known::One)
        return one();
    if (ka == Known::Zero)
        return b;
    if (kb == Known::Zero)
        return a;
    if (a == b)
        return a;
    return nl.binary(GateKind::Or, a, b);
}

CircuitBuilder::NodeId
CircuitBuilder::lxor(NodeId a, NodeId b)
{
    const Known ka = knownOf(a), kb = knownOf(b);
    if (a == b)
        return zero();
    if (ka == Known::Zero)
        return b;
    if (kb == Known::Zero)
        return a;
    if (ka == Known::One)
        return lnot(b);
    if (kb == Known::One)
        return lnot(a);
    return nl.binary(GateKind::Xor, a, b);
}

CircuitBuilder::NodeId
CircuitBuilder::mux(NodeId sel, NodeId on_true, NodeId on_false)
{
    switch (knownOf(sel)) {
      case Known::Zero: return on_false;
      case Known::One: return on_true;
      default: break;
    }
    if (on_true == on_false)
        return on_true;
    return lor(land(sel, on_true), land(lnot(sel), on_false));
}

Bus
CircuitBuilder::inputBus(unsigned n)
{
    Bus bus(n);
    for (auto &bit : bus)
        bit = nl.addInput();
    return bus;
}

Bus
CircuitBuilder::constBus(std::uint64_t value, unsigned n)
{
    Bus bus(n);
    for (unsigned i = 0; i < n; ++i)
        bus[i] = ((value >> i) & 1) ? one() : zero();
    return bus;
}

Bus
CircuitBuilder::busNot(const Bus &a)
{
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = lnot(a[i]);
    return out;
}

Bus
CircuitBuilder::busAnd(const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "busAnd: width mismatch");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = land(a[i], b[i]);
    return out;
}

Bus
CircuitBuilder::busOr(const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "busOr: width mismatch");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = lor(a[i], b[i]);
    return out;
}

Bus
CircuitBuilder::busXor(const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "busXor: width mismatch");
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = lxor(a[i], b[i]);
    return out;
}

Bus
CircuitBuilder::busAndBit(const Bus &a, NodeId s)
{
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = land(a[i], s);
    return out;
}

Bus
CircuitBuilder::busMux(NodeId sel, const Bus &on_true, const Bus &on_false)
{
    panicIf(on_true.size() != on_false.size(), "busMux: width mismatch");
    Bus out(on_true.size());
    for (std::size_t i = 0; i < on_true.size(); ++i)
        out[i] = mux(sel, on_true[i], on_false[i]);
    return out;
}

CircuitBuilder::NodeId
CircuitBuilder::reduceOr(const Bus &a)
{
    panicIf(a.empty(), "reduceOr: empty bus");
    // Balanced tree to keep depth logarithmic.
    Bus level = a;
    while (level.size() > 1) {
        Bus next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(lor(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

CircuitBuilder::NodeId
CircuitBuilder::reduceAnd(const Bus &a)
{
    panicIf(a.empty(), "reduceAnd: empty bus");
    Bus level = a;
    while (level.size() > 1) {
        Bus next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(land(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

Bus
CircuitBuilder::slice(const Bus &a, unsigned lo, unsigned n)
{
    panicIf(lo + n > a.size(), "slice: out of range");
    return Bus(a.begin() + lo, a.begin() + lo + n);
}

Bus
CircuitBuilder::concat(const Bus &low, const Bus &high)
{
    Bus out = low;
    out.insert(out.end(), high.begin(), high.end());
    return out;
}

void
CircuitBuilder::markOutput(const Bus &a)
{
    for (auto bit : a)
        nl.markOutput(bit);
}

CircuitBuilder::AddResult
CircuitBuilder::rippleAdd(const Bus &a, const Bus &b, NodeId carry_in)
{
    panicIf(a.size() != b.size(), "rippleAdd: width mismatch");
    AddResult res;
    res.sum.resize(a.size());
    NodeId carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const NodeId p = lxor(a[i], b[i]);
        res.sum[i] = lxor(p, carry);
        carry = lor(land(a[i], b[i]), land(p, carry));
    }
    res.carryOut = carry;
    return res;
}

CircuitBuilder::AddResult
CircuitBuilder::koggeStoneAdd(const Bus &a, const Bus &b, NodeId carry_in)
{
    panicIf(a.size() != b.size(), "koggeStoneAdd: width mismatch");
    const std::size_t n = a.size();
    Bus p(n), g(n);
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = lxor(a[i], b[i]);
        g[i] = land(a[i], b[i]);
    }
    // Parallel prefix: after the sweep, g[i] generates a carry out of
    // bit i from bits [0..i]; p[i] propagates across [0..i].
    Bus gp = g, pp = p;
    for (std::size_t dist = 1; dist < n; dist *= 2) {
        Bus gNext = gp, pNext = pp;
        for (std::size_t i = dist; i < n; ++i) {
            gNext[i] = lor(gp[i], land(pp[i], gp[i - dist]));
            pNext[i] = land(pp[i], pp[i - dist]);
        }
        gp = std::move(gNext);
        pp = std::move(pNext);
    }
    AddResult res;
    res.sum.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const NodeId carry_i =
            i == 0 ? carry_in
                   : lor(gp[i - 1], land(pp[i - 1], carry_in));
        res.sum[i] = lxor(p[i], carry_i);
    }
    res.carryOut = lor(gp[n - 1], land(pp[n - 1], carry_in));
    return res;
}

CircuitBuilder::AddResult
CircuitBuilder::increment(const Bus &a, NodeId carry_in)
{
    AddResult res;
    res.sum.resize(a.size());
    NodeId carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
        res.sum[i] = lxor(a[i], carry);
        carry = land(a[i], carry);
    }
    res.carryOut = carry;
    return res;
}

Bus
CircuitBuilder::multiply(const Bus &a, const Bus &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    Bus acc = constBus(0, static_cast<unsigned>(n + m));
    for (std::size_t i = 0; i < m; ++i) {
        const Bus row = busAndBit(a, b[i]);
        const Bus sliceBits =
            slice(acc, static_cast<unsigned>(i), static_cast<unsigned>(n));
        auto add = rippleAdd(sliceBits, row, zero());
        for (std::size_t k = 0; k < n; ++k)
            acc[i + k] = add.sum[k];
        // Ripple the row's carry up through the remaining accumulator.
        NodeId carry = add.carryOut;
        for (std::size_t j = i + n; j < n + m; ++j) {
            const NodeId oldBit = acc[j];
            acc[j] = lxor(oldBit, carry);
            carry = land(oldBit, carry);
        }
    }
    return acc;
}

CircuitBuilder::ShiftResult
CircuitBuilder::shiftRightSticky(const Bus &value, const Bus &amount)
{
    ShiftResult res;
    res.value = value;
    res.sticky = zero();
    const std::size_t n = value.size();
    for (std::size_t k = 0; k < amount.size(); ++k) {
        const std::size_t dist = 1ull << k;
        const NodeId sel = amount[k];
        // Bits that fall off the low end when this stage is active.
        const std::size_t lostCount = dist < n ? dist : n;
        const NodeId lost =
            reduceOr(slice(res.value, 0, static_cast<unsigned>(lostCount)));
        res.sticky = lor(res.sticky, land(sel, lost));
        Bus shifted(n);
        for (std::size_t i = 0; i < n; ++i) {
            const NodeId moved =
                i + dist < n ? res.value[i + dist] : zero();
            shifted[i] = mux(sel, moved, res.value[i]);
        }
        res.value = std::move(shifted);
    }
    return res;
}

Bus
CircuitBuilder::shiftLeft(const Bus &value, const Bus &amount)
{
    Bus cur = value;
    const std::size_t n = value.size();
    for (std::size_t k = 0; k < amount.size(); ++k) {
        const std::size_t dist = 1ull << k;
        const NodeId sel = amount[k];
        Bus shifted(n);
        for (std::size_t i = 0; i < n; ++i) {
            const NodeId moved = i >= dist ? cur[i - dist] : zero();
            shifted[i] = mux(sel, moved, cur[i]);
        }
        cur = std::move(shifted);
    }
    return cur;
}

Bus
CircuitBuilder::leadingZeroCount(const Bus &value)
{
    const std::size_t n = value.size();
    unsigned resultWidth = 1;
    while ((1ull << resultWidth) <= n)
        ++resultWidth;

    Bus result(resultWidth);
    for (auto &bit : result)
        bit = zero();

    // One-hot "first set bit from the MSB" chain; OR its position code
    // into the result.
    NodeId notFound = one();
    for (std::size_t i = n; i-- > 0;) {
        const NodeId sel = land(notFound, value[i]);
        const std::size_t count = n - 1 - i;
        for (unsigned j = 0; j < resultWidth; ++j) {
            if ((count >> j) & 1)
                result[j] = lor(result[j], sel);
        }
        notFound = land(notFound, lnot(value[i]));
    }
    // All-zero input counts the full width.
    for (unsigned j = 0; j < resultWidth; ++j) {
        if ((n >> j) & 1)
            result[j] = lor(result[j], notFound);
    }
    return result;
}

} // namespace harpo::gates
