#include "gates/netlist.hh"

#include <string>

#include "common/logging.hh"
#include "resilience/error.hh"

namespace harpo::gates
{

Netlist::NodeId
Netlist::addInput()
{
    const NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back({GateKind::Input, 0, 0});
    inputOrder.push_back(id);
    ++inputCount;
    return id;
}

Netlist::NodeId
Netlist::constant(bool value)
{
    const NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back({value ? GateKind::Const1 : GateKind::Const0, 0, 0});
    return id;
}

Netlist::NodeId
Netlist::unary(GateKind kind, NodeId a)
{
    panicIf(kind != GateKind::Buf && kind != GateKind::Not,
            "unary: not a unary gate kind");
    panicIf(a >= nodes.size(), "unary: operand not yet defined");
    const NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back({kind, a, a});
    logic.push_back(id);
    return id;
}

Netlist::NodeId
Netlist::binary(GateKind kind, NodeId a, NodeId b)
{
    panicIf(kind == GateKind::Buf || kind == GateKind::Not ||
                kind == GateKind::Input || kind == GateKind::Const0 ||
                kind == GateKind::Const1,
            "binary: not a binary gate kind");
    panicIf(a >= nodes.size() || b >= nodes.size(),
            "binary: operand not yet defined");
    const NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back({kind, a, b});
    logic.push_back(id);
    return id;
}

const Gate &
Netlist::gateAt(NodeId id) const
{
    panicIf(id >= nodes.size(), "gateAt: node not defined");
    return nodes[id];
}

void
Netlist::markOutput(NodeId id)
{
    panicIf(id >= nodes.size(), "markOutput: node not defined");
    outputs.push_back(id);
}

void
Netlist::evaluate(const std::vector<std::uint8_t> &inputs,
                  std::vector<std::uint8_t> &outputs_out,
                  std::int64_t stuck_gate, bool stuck_value,
                  std::vector<std::uint8_t> &scratch) const
{
    panicIf(inputs.size() != inputCount,
            "Netlist::evaluate: input count mismatch");
    // Callers reuse scratch/output buffers across calls; skip the
    // resize entirely on the hot path where they already fit.
    if (scratch.size() != nodes.size())
        scratch.resize(nodes.size());

    std::size_t nextInput = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Gate &g = nodes[i];
        std::uint8_t v;
        switch (g.kind) {
          case GateKind::Const0: v = 0; break;
          case GateKind::Const1: v = 1; break;
          case GateKind::Input: v = inputs[nextInput++] & 1; break;
          case GateKind::Buf: v = scratch[g.a]; break;
          case GateKind::Not: v = scratch[g.a] ^ 1; break;
          case GateKind::And: v = scratch[g.a] & scratch[g.b]; break;
          case GateKind::Or: v = scratch[g.a] | scratch[g.b]; break;
          case GateKind::Xor: v = scratch[g.a] ^ scratch[g.b]; break;
          case GateKind::Nand:
            v = (scratch[g.a] & scratch[g.b]) ^ 1;
            break;
          case GateKind::Nor:
            v = (scratch[g.a] | scratch[g.b]) ^ 1;
            break;
          case GateKind::Xnor:
            v = (scratch[g.a] ^ scratch[g.b]) ^ 1;
            break;
          default:
            panic("Netlist::evaluate: unknown gate kind");
        }
        if (static_cast<std::int64_t>(i) == stuck_gate)
            v = stuck_value ? 1 : 0;
        scratch[i] = v;
    }

    if (outputs_out.size() != outputs.size())
        outputs_out.resize(outputs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i)
        outputs_out[i] = scratch[outputs[i]];
}

void
Netlist::evaluateBatch(const std::vector<std::uint64_t> &inputs,
                       std::vector<std::uint64_t> &outputs_out,
                       const std::vector<LaneFault> &faults,
                       std::vector<std::uint64_t> &scratch) const
{
    panicIf(inputs.size() != inputCount,
            "Netlist::evaluateBatch: input count mismatch");
    // Reject malformed fault lists up front: a duplicate or unsorted
    // gate id would silently skip the remaining forces during the
    // walk, grading lanes against the wrong faulty circuit.
    for (std::size_t k = 0; k < faults.size(); ++k) {
        if (faults[k].gate >= nodes.size())
            throw Error::config(
                "Netlist::evaluateBatch: fault on undefined node " +
                std::to_string(faults[k].gate));
        if (k > 0 && faults[k].gate == faults[k - 1].gate)
            throw Error::config(
                "Netlist::evaluateBatch: duplicate fault entries for "
                "gate " +
                std::to_string(faults[k].gate) +
                " (merge lane/value masks into one entry)");
        if (k > 0 && faults[k].gate < faults[k - 1].gate)
            throw Error::config(
                "Netlist::evaluateBatch: faults not sorted by "
                "ascending gate id (gate " +
                std::to_string(faults[k].gate) + " after gate " +
                std::to_string(faults[k - 1].gate) + ")");
    }
    if (scratch.size() != nodes.size())
        scratch.resize(nodes.size());

    std::size_t nextInput = 0;
    std::size_t nextFault = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Gate &g = nodes[i];
        std::uint64_t v;
        switch (g.kind) {
          case GateKind::Const0: v = 0; break;
          case GateKind::Const1: v = ~0ull; break;
          case GateKind::Input: v = inputs[nextInput++]; break;
          case GateKind::Buf: v = scratch[g.a]; break;
          case GateKind::Not: v = ~scratch[g.a]; break;
          case GateKind::And: v = scratch[g.a] & scratch[g.b]; break;
          case GateKind::Or: v = scratch[g.a] | scratch[g.b]; break;
          case GateKind::Xor: v = scratch[g.a] ^ scratch[g.b]; break;
          case GateKind::Nand:
            v = ~(scratch[g.a] & scratch[g.b]);
            break;
          case GateKind::Nor:
            v = ~(scratch[g.a] | scratch[g.b]);
            break;
          case GateKind::Xnor:
            v = ~(scratch[g.a] ^ scratch[g.b]);
            break;
          default:
            panic("Netlist::evaluateBatch: unknown gate kind");
        }
        if (nextFault < faults.size() && faults[nextFault].gate == i) {
            const LaneFault &f = faults[nextFault++];
            v = (v & ~f.laneMask) | (f.valueMask & f.laneMask);
        }
        scratch[i] = v;
    }

    if (outputs_out.size() != outputs.size())
        outputs_out.resize(outputs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i)
        outputs_out[i] = scratch[outputs[i]];
}

void
Netlist::broadcastInputs(std::vector<std::uint64_t> &inputs,
                         std::uint64_t v, unsigned n_bits)
{
    for (unsigned i = 0; i < n_bits; ++i)
        inputs.push_back((v >> i) & 1 ? ~0ull : 0ull);
}

std::uint64_t
Netlist::laneWord(const std::vector<std::uint64_t> &outputs, unsigned lane,
                  unsigned lo, unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= ((outputs[lo + i] >> lane) & 1) << i;
    return v;
}

} // namespace harpo::gates
