/**
 * @file
 * Bus-level construction helpers over a Netlist: logic on bit buses,
 * muxes, ripple/Kogge-Stone adders, shifters with sticky collection,
 * leading-zero counters — the building blocks of the FU circuits.
 */

#ifndef HARPOCRATES_GATES_CIRCUIT_BUILDER_HH
#define HARPOCRATES_GATES_CIRCUIT_BUILDER_HH

#include <cstdint>
#include <vector>

#include "gates/netlist.hh"

namespace harpo::gates
{

/** A little-endian bus of netlist nodes (index 0 = LSB). */
using Bus = std::vector<Netlist::NodeId>;

/**
 * Fluent circuit construction over a Netlist.
 *
 * The builder performs light logic synthesis as it goes: constants
 * are deduplicated and folded, and algebraic identities
 * (x&0, x|1, x^x, x&x, muxes with constant selects or equal arms)
 * are simplified to existing nodes. This matches what any synthesis
 * flow would emit — the stuck-at fault population consists only of
 * gates that exist in an optimized netlist — and substantially
 * shrinks the array multiplier, whose accumulator starts constant.
 */
class CircuitBuilder
{
  public:
    using NodeId = Netlist::NodeId;

    explicit CircuitBuilder(Netlist &netlist) : nl(netlist) {}

    Netlist &netlist() { return nl; }

    // ---- Primitives (with folding) ----
    NodeId zero();
    NodeId one();
    NodeId lnot(NodeId a);
    NodeId land(NodeId a, NodeId b);
    NodeId lor(NodeId a, NodeId b);
    NodeId lxor(NodeId a, NodeId b);

    /** 2:1 mux: sel ? on_true : on_false. */
    NodeId mux(NodeId sel, NodeId on_true, NodeId on_false);

    // ---- Buses ----
    Bus inputBus(unsigned n);
    Bus constBus(std::uint64_t value, unsigned n);
    Bus busNot(const Bus &a);
    Bus busAnd(const Bus &a, const Bus &b);
    Bus busOr(const Bus &a, const Bus &b);
    Bus busXor(const Bus &a, const Bus &b);
    /** AND every bit of @p a with the single signal @p s. */
    Bus busAndBit(const Bus &a, NodeId s);
    Bus busMux(NodeId sel, const Bus &on_true, const Bus &on_false);
    NodeId reduceOr(const Bus &a);
    NodeId reduceAnd(const Bus &a);
    /** Slice [lo, lo+n) of a bus. */
    static Bus slice(const Bus &a, unsigned lo, unsigned n);
    /** Concatenate: low bits first. */
    static Bus concat(const Bus &low, const Bus &high);
    void markOutput(const Bus &a);

    // ---- Arithmetic ----
    struct AddResult
    {
        Bus sum;
        NodeId carryOut;
    };
    /** Ripple-carry adder (compact; used inside the multiplier). */
    AddResult rippleAdd(const Bus &a, const Bus &b, NodeId carry_in);
    /** Kogge-Stone parallel-prefix adder (the "fast adder" FU). */
    AddResult koggeStoneAdd(const Bus &a, const Bus &b, NodeId carry_in);
    /** a + (0/1): incrementer with carry chain. */
    AddResult increment(const Bus &a, NodeId carry_in);

    /** Unsigned shift-add array multiplication (n x m -> n+m bits). */
    Bus multiply(const Bus &a, const Bus &b);

    // ---- Shifters / counters ----
    /** Logical right shift by a log2-encoded amount, OR-ing every
     *  shifted-out bit into the sticky output (shift-right-jam). */
    struct ShiftResult
    {
        Bus value;
        NodeId sticky;
    };
    ShiftResult shiftRightSticky(const Bus &value, const Bus &amount);
    /** Logical left shift by a log2-encoded amount. */
    Bus shiftLeft(const Bus &value, const Bus &amount);
    /** Leading-zero count of @p value (MSB side), log2-width result. */
    Bus leadingZeroCount(const Bus &value);

  private:
    /** Constness of a node, if known. */
    enum class Known : std::uint8_t { No, Zero, One };
    Known knownOf(NodeId id) const;

    Netlist &nl;
    std::vector<std::uint8_t> known; // per-node Known, lazily extended
    NodeId const0 = 0;
    NodeId const1 = 0;
    bool haveConst0 = false;
    bool haveConst1 = false;

    void noteKnown(NodeId id, Known k);
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_CIRCUIT_BUILDER_HH
