#include "gates/int_units.hh"

#include "gates/circuit_builder.hh"

namespace harpo::gates
{

namespace
{

void
packWord(std::vector<std::uint8_t> &inputs, std::uint64_t v, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        inputs.push_back(static_cast<std::uint8_t>((v >> i) & 1));
}

std::uint64_t
unpackWord(const std::vector<std::uint8_t> &bits, unsigned lo, unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(bits[lo + i] & 1) << i;
    return v;
}

} // namespace

IntAdderCircuit::IntAdderCircuit()
{
    CircuitBuilder cb(nl);
    const Bus a = cb.inputBus(64);
    const Bus b = cb.inputBus(64);
    const auto cin = nl.addInput();
    const auto add = cb.koggeStoneAdd(a, b, cin);
    cb.markOutput(add.sum);
    nl.markOutput(add.carryOut);
}

IntAdderCircuit::Result
IntAdderCircuit::compute(std::uint64_t a, std::uint64_t b, bool carry_in,
                         std::int64_t stuck_gate, bool stuck_value) const
{
    thread_local std::vector<std::uint8_t> scratch;
    thread_local std::vector<std::uint8_t> inputs;
    thread_local std::vector<std::uint8_t> outputs;
    inputs.clear();
    packWord(inputs, a, 64);
    packWord(inputs, b, 64);
    inputs.push_back(carry_in ? 1 : 0);
    nl.evaluate(inputs, outputs, stuck_gate, stuck_value, scratch);
    Result r;
    r.sum = unpackWord(outputs, 0, 64);
    r.carryOut = outputs[64] != 0;
    return r;
}

std::uint64_t
IntAdderCircuit::computeBatch(std::uint64_t a, std::uint64_t b,
                              bool carry_in,
                              const std::vector<Netlist::LaneFault> &faults,
                              std::vector<std::uint64_t> &outputs,
                              std::vector<std::uint64_t> &scratch) const
{
    thread_local std::vector<std::uint64_t> inputs;
    inputs.clear();
    Netlist::broadcastInputs(inputs, a, 64);
    Netlist::broadcastInputs(inputs, b, 64);
    inputs.push_back(carry_in ? ~0ull : 0ull);
    nl.evaluateBatch(inputs, outputs, faults, scratch);
    return Netlist::divergedLanes(outputs);
}

IntMultiplierCircuit::IntMultiplierCircuit()
{
    CircuitBuilder cb(nl);
    const Bus a = cb.inputBus(64);
    const Bus b = cb.inputBus(64);
    const Bus prod = cb.multiply(a, b);
    cb.markOutput(prod); // 128 output bits, low first
}

IntMultiplierCircuit::Result
IntMultiplierCircuit::compute(std::uint64_t a, std::uint64_t b,
                              std::int64_t stuck_gate,
                              bool stuck_value) const
{
    thread_local std::vector<std::uint8_t> scratch;
    thread_local std::vector<std::uint8_t> inputs;
    thread_local std::vector<std::uint8_t> outputs;
    inputs.clear();
    packWord(inputs, a, 64);
    packWord(inputs, b, 64);
    nl.evaluate(inputs, outputs, stuck_gate, stuck_value, scratch);
    Result r;
    r.lo = unpackWord(outputs, 0, 64);
    r.hi = unpackWord(outputs, 64, 64);
    return r;
}

std::uint64_t
IntMultiplierCircuit::computeBatch(
    std::uint64_t a, std::uint64_t b,
    const std::vector<Netlist::LaneFault> &faults,
    std::vector<std::uint64_t> &outputs,
    std::vector<std::uint64_t> &scratch) const
{
    thread_local std::vector<std::uint64_t> inputs;
    inputs.clear();
    Netlist::broadcastInputs(inputs, a, 64);
    Netlist::broadcastInputs(inputs, b, 64);
    nl.evaluateBatch(inputs, outputs, faults, scratch);
    return Netlist::divergedLanes(outputs);
}

} // namespace harpo::gates
