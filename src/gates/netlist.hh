/**
 * @file
 * Structural gate-level netlists.
 *
 * The paper grades functional-unit tests with *permanent gate-level
 * stuck-at faults* injected into gate-level models of the CPU's
 * functional units. This module provides the netlist substrate: gates
 * are appended in topological order (operands must already exist), and
 * evaluation optionally forces one gate's output to a stuck value.
 */

#ifndef HARPOCRATES_GATES_NETLIST_HH
#define HARPOCRATES_GATES_NETLIST_HH

#include <cstdint>
#include <vector>

namespace harpo::gates
{

enum class GateKind : std::uint8_t
{
    Const0,
    Const1,
    Input,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
};

/** One gate; @c a and @c b index earlier nodes. */
struct Gate
{
    GateKind kind = GateKind::Const0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
};

/** An append-only, topologically ordered gate netlist. */
class Netlist
{
  public:
    using NodeId = std::uint32_t;

    /** Add a primary input; returns its node id. Input order defines
     *  the layout of the evaluation input vector. */
    NodeId addInput();

    /** Constant node. */
    NodeId constant(bool value);

    /** Unary gate (Buf / Not). */
    NodeId unary(GateKind kind, NodeId a);

    /** Binary gate. */
    NodeId binary(GateKind kind, NodeId a, NodeId b);

    /** Append an output in order; outputs are read back by position. */
    void markOutput(NodeId id);

    std::size_t numNodes() const { return nodes.size(); }
    std::size_t numInputs() const { return inputCount; }
    std::size_t numOutputs() const { return outputs.size(); }

    /** Ids of all logic gates (fault-injection candidates: everything
     *  except constants and primary inputs). */
    const std::vector<NodeId> &logicGates() const { return logic; }

    /** No fault sentinel for evaluate(). */
    static constexpr std::int64_t noFault = -1;

    /**
     * Evaluate the netlist.
     *
     * @param inputs One byte (0/1) per primary input, in input order.
     * @param outputs Receives one byte per marked output.
     * @param stuck_gate Node id forced to @p stuck_value, or noFault.
     * @param scratch Reusable node-value buffer (resized as needed);
     *        pass a per-thread buffer to avoid reallocation.
     */
    void evaluate(const std::vector<std::uint8_t> &inputs,
                  std::vector<std::uint8_t> &outputs,
                  std::int64_t stuck_gate, bool stuck_value,
                  std::vector<std::uint8_t> &scratch) const;

  private:
    std::vector<Gate> nodes;
    std::vector<NodeId> outputs;
    std::vector<NodeId> logic;
    std::vector<NodeId> inputOrder;
    std::size_t inputCount = 0;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_NETLIST_HH
