/**
 * @file
 * Structural gate-level netlists.
 *
 * The paper grades functional-unit tests with *permanent gate-level
 * stuck-at faults* injected into gate-level models of the CPU's
 * functional units. This module provides the netlist substrate: gates
 * are appended in topological order (operands must already exist), and
 * evaluation optionally forces one gate's output to a stuck value.
 *
 * Two evaluators exist. evaluate() is the scalar reference: one byte
 * per node, one stuck gate per call. evaluateBatch() packs 64
 * evaluation lanes into one std::uint64_t per node, so a single
 * topological walk evaluates 64 independent lanes — either 64 input
 * patterns, or one input pattern against up to 63 distinct stuck-at
 * faults with lane 0 kept fault-free as the reference (the layout the
 * fault-parallel campaign path uses).
 */

#ifndef HARPOCRATES_GATES_NETLIST_HH
#define HARPOCRATES_GATES_NETLIST_HH

#include <cstdint>
#include <vector>

namespace harpo::gates
{

enum class GateKind : std::uint8_t
{
    Const0,
    Const1,
    Input,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
};

/** One gate; @c a and @c b index earlier nodes. */
struct Gate
{
    GateKind kind = GateKind::Const0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
};

/** An append-only, topologically ordered gate netlist. */
class Netlist
{
  public:
    using NodeId = std::uint32_t;

    /** Add a primary input; returns its node id. Input order defines
     *  the layout of the evaluation input vector. */
    NodeId addInput();

    /** Constant node. */
    NodeId constant(bool value);

    /** Unary gate (Buf / Not). */
    NodeId unary(GateKind kind, NodeId a);

    /** Binary gate. */
    NodeId binary(GateKind kind, NodeId a, NodeId b);

    /** Append an output in order; outputs are read back by position. */
    void markOutput(NodeId id);

    std::size_t numNodes() const { return nodes.size(); }
    std::size_t numInputs() const { return inputCount; }
    std::size_t numOutputs() const { return outputs.size(); }

    /** Ids of all logic gates (fault-injection candidates: everything
     *  except constants and primary inputs). */
    const std::vector<NodeId> &logicGates() const { return logic; }

    /** The gate at @p id (structural inspection, e.g. fault
     *  collapsing). Panics on out-of-range ids. */
    const Gate &gateAt(NodeId id) const;

    /** Marked output nodes, in markOutput() order. A node may appear
     *  more than once if it was marked repeatedly. */
    const std::vector<NodeId> &outputNodes() const { return outputs; }

    /** No fault sentinel for evaluate(). */
    static constexpr std::int64_t noFault = -1;

    /**
     * Evaluate the netlist.
     *
     * @param inputs One byte (0/1) per primary input, in input order.
     * @param outputs Receives one byte per marked output.
     * @param stuck_gate Node id forced to @p stuck_value, or noFault.
     * @param scratch Reusable node-value buffer (resized as needed);
     *        pass a per-thread buffer to avoid reallocation.
     */
    void evaluate(const std::vector<std::uint8_t> &inputs,
                  std::vector<std::uint8_t> &outputs,
                  std::int64_t stuck_gate, bool stuck_value,
                  std::vector<std::uint8_t> &scratch) const;

    /**
     * Per-lane stuck-at forcing for evaluateBatch(). On node @c gate,
     * lanes in @c laneMask are forced: lanes also in @c valueMask to 1,
     * the rest to 0. @c valueMask must be a subset of @c laneMask.
     */
    struct LaneFault
    {
        NodeId gate = 0;
        std::uint64_t laneMask = 0;
        std::uint64_t valueMask = 0;
    };

    /**
     * Bit-parallel evaluation: 64 lanes per walk.
     *
     * @param inputs One word per primary input; bit L is lane L's
     *        input value (see broadcastInputs for the common
     *        same-pattern-every-lane case).
     * @param outputs Receives one word per marked output.
     * @param faults Per-lane stuck-at forces, sorted by strictly
     *        ascending gate id. Duplicate or unsorted gate entries and
     *        out-of-range gate ids are rejected with a Config
     *        harpo::Error (callers with several faults on the same
     *        gate must merge them into one entry first, as
     *        faultsim::makeLaneFaults does). Pass an empty vector for
     *        fault-free lanes.
     * @param scratch Reusable node-value buffer, as for evaluate().
     * @throws harpo::Error (Config) when @p faults is malformed.
     */
    void evaluateBatch(const std::vector<std::uint64_t> &inputs,
                       std::vector<std::uint64_t> &outputs,
                       const std::vector<LaneFault> &faults,
                       std::vector<std::uint64_t> &scratch) const;

    /** Append @p n_bits words broadcasting scalar @p v: word i is
     *  all-ones when bit i of @p v is set (every lane sees @p v). */
    static void broadcastInputs(std::vector<std::uint64_t> &inputs,
                                std::uint64_t v, unsigned n_bits);

    /** Reassemble lane @p lane of batch outputs [lo, lo+n) into an
     *  integer, bit i taken from outputs[lo + i]. */
    static std::uint64_t laneWord(const std::vector<std::uint64_t> &outputs,
                                  unsigned lane, unsigned lo, unsigned n);

    /** Mask of lanes whose output bits differ from lane 0 anywhere in
     *  @p outputs (bit 0 of the result is always clear). */
    static std::uint64_t
    divergedLanes(const std::vector<std::uint64_t> &outputs)
    {
        std::uint64_t diverged = 0;
        for (const std::uint64_t w : outputs)
            diverged |= (w & 1) ? ~w : w;
        return diverged & ~1ull;
    }

  private:
    std::vector<Gate> nodes;
    std::vector<NodeId> outputs;
    std::vector<NodeId> logic;
    std::vector<NodeId> inputOrder;
    std::size_t inputCount = 0;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_NETLIST_HH
