/**
 * @file
 * Gate-level SSE double-precision functional units: an FP adder and an
 * FP multiplier implementing exactly the FTZ/RNE datapath model of
 * common/softfloat.hh (they are cross-checked bit-for-bit in tests).
 *
 * The adder handles subtraction too: the ISA semantics flip the sign
 * bit of the second operand, exactly as SUBSD drives the shared
 * add/sub datapath in hardware.
 */

#ifndef HARPOCRATES_GATES_FP_UNITS_HH
#define HARPOCRATES_GATES_FP_UNITS_HH

#include <cstdint>

#include "gates/netlist.hh"

namespace harpo::gates
{

/** IEEE-754 double-precision adder (FTZ / round-to-nearest-even). */
class FpAdderCircuit
{
  public:
    FpAdderCircuit();

    std::uint64_t compute(std::uint64_t a, std::uint64_t b,
                          std::int64_t stuck_gate = Netlist::noFault,
                          bool stuck_value = false) const;

    /** Bit-parallel: evaluate one (a, b) operation across 64 lanes,
     *  each lane carrying the stuck-at forces in @p faults (sorted by
     *  gate id). @p outputs receives the packed per-lane result bits;
     *  returns the mask of lanes whose fp64 result differs from lane 0
     *  (keep lane 0 fault-free as the golden reference). */
    std::uint64_t
    computeBatch(std::uint64_t a, std::uint64_t b,
                 const std::vector<Netlist::LaneFault> &faults,
                 std::vector<std::uint64_t> &outputs,
                 std::vector<std::uint64_t> &scratch) const;

    const Netlist &netlist() const { return nl; }

  private:
    Netlist nl;
};

/** IEEE-754 double-precision multiplier (FTZ / RNE). */
class FpMultiplierCircuit
{
  public:
    FpMultiplierCircuit();

    std::uint64_t compute(std::uint64_t a, std::uint64_t b,
                          std::int64_t stuck_gate = Netlist::noFault,
                          bool stuck_value = false) const;

    /** Bit-parallel 64-lane evaluation; see FpAdderCircuit. */
    std::uint64_t
    computeBatch(std::uint64_t a, std::uint64_t b,
                 const std::vector<Netlist::LaneFault> &faults,
                 std::vector<std::uint64_t> &outputs,
                 std::vector<std::uint64_t> &scratch) const;

    const Netlist &netlist() const { return nl; }

  private:
    Netlist nl;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_FP_UNITS_HH
