/**
 * @file
 * Process-wide library of the four gate-level functional units.
 *
 * Circuit construction is expensive (tens of thousands of gates), so
 * the fault-injection engine and tests share one immutable instance of
 * each circuit. Evaluation is thread-safe (per-thread scratch buffers).
 */

#ifndef HARPOCRATES_GATES_FU_LIBRARY_HH
#define HARPOCRATES_GATES_FU_LIBRARY_HH

#include "gates/int_units.hh"
#include "gates/fp_units.hh"
#include "isa/instruction.hh"

namespace harpo::gates
{

/** Lazily constructed shared circuits. */
class FuLibrary
{
  public:
    static const FuLibrary &instance();

    const IntAdderCircuit &intAdder() const { return intAdd; }
    const IntMultiplierCircuit &intMultiplier() const { return intMul; }
    const FpAdderCircuit &fpAdder() const { return fpAdd; }
    const FpMultiplierCircuit &fpMultiplier() const { return fpMul; }

    /** Netlist for a given FU circuit kind (panics on None). */
    const Netlist &netlistFor(isa::FuCircuit circuit) const;

  private:
    FuLibrary() = default;

    IntAdderCircuit intAdd;
    IntMultiplierCircuit intMul;
    FpAdderCircuit fpAdd;
    FpMultiplierCircuit fpMul;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_FU_LIBRARY_HH
