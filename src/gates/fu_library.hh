/**
 * @file
 * Process-wide library of the four gate-level functional units.
 *
 * Circuit construction is expensive (tens of thousands of gates), so
 * the fault-injection engine and tests share one immutable instance of
 * each circuit. Evaluation is thread-safe (per-thread scratch buffers).
 */

#ifndef HARPOCRATES_GATES_FU_LIBRARY_HH
#define HARPOCRATES_GATES_FU_LIBRARY_HH

#include "gates/int_units.hh"
#include "gates/fp_units.hh"
#include "isa/instruction.hh"

namespace harpo::gates
{

/** Lazily constructed shared circuits. */
class FuLibrary
{
  public:
    static const FuLibrary &instance();

    const IntAdderCircuit &intAdder() const { return intAdd; }
    const IntMultiplierCircuit &intMultiplier() const { return intMul; }
    const FpAdderCircuit &fpAdder() const { return fpAdd; }
    const FpMultiplierCircuit &fpMultiplier() const { return fpMul; }

    /** Netlist for a given FU circuit kind (panics on None). */
    const Netlist &netlistFor(isa::FuCircuit circuit) const;

    /** Bit-parallel evaluation of one operation on @p circuit across
     *  64 stuck-at lanes (the per-unit computeBatch wrappers behind
     *  one dispatch point; @p carry_in only matters for IntAdd).
     *  Returns the mask of lanes diverging from fault-free lane 0. */
    std::uint64_t
    computeBatchFor(isa::FuCircuit circuit, std::uint64_t a,
                    std::uint64_t b, bool carry_in,
                    const std::vector<Netlist::LaneFault> &faults,
                    std::vector<std::uint64_t> &outputs,
                    std::vector<std::uint64_t> &scratch) const;

  private:
    FuLibrary() = default;

    IntAdderCircuit intAdd;
    IntMultiplierCircuit intMul;
    FpAdderCircuit fpAdd;
    FpMultiplierCircuit fpMul;
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_FU_LIBRARY_HH
