/**
 * @file
 * Process-wide library of the four gate-level functional units.
 *
 * Circuit construction is expensive (tens of thousands of gates), so
 * the fault-injection engine and tests share one immutable instance of
 * each circuit. Evaluation is thread-safe (per-thread scratch buffers).
 */

#ifndef HARPOCRATES_GATES_FU_LIBRARY_HH
#define HARPOCRATES_GATES_FU_LIBRARY_HH

#include <memory>
#include <mutex>
#include <string>

#include "gates/fault_collapse.hh"
#include "gates/int_units.hh"
#include "gates/fp_units.hh"
#include "isa/instruction.hh"

namespace harpo::gates
{

/** Lazily constructed shared circuits. */
class FuLibrary
{
  public:
    static const FuLibrary &instance();

    const IntAdderCircuit &intAdder() const { return intAdd; }
    const IntMultiplierCircuit &intMultiplier() const { return intMul; }
    const FpAdderCircuit &fpAdder() const { return fpAdd; }
    const FpMultiplierCircuit &fpMultiplier() const { return fpMul; }

    /** Netlist for a given FU circuit kind (panics on None). */
    const Netlist &netlistFor(isa::FuCircuit circuit) const;

    /** Collapsed stuck-at fault set for @p circuit (panics on None).
     *  Built lazily on first use, cached for the process lifetime,
     *  thread-safe; publishes the per-unit `collapse.*` telemetry
     *  gauges on first build. */
    const CollapsedFaultSet &collapsedFor(isa::FuCircuit circuit) const;

    /** Human-readable per-unit collapse table (faults, classes,
     *  ratio, untestable, dominance edges) plus the process-wide
     *  campaign counters — the `--collapse-stats` dump. Forces
     *  analysis of all four units. */
    std::string collapseSummary() const;

    /** Bit-parallel evaluation of one operation on @p circuit across
     *  64 stuck-at lanes (the per-unit computeBatch wrappers behind
     *  one dispatch point; @p carry_in only matters for IntAdd).
     *  Returns the mask of lanes diverging from fault-free lane 0. */
    std::uint64_t
    computeBatchFor(isa::FuCircuit circuit, std::uint64_t a,
                    std::uint64_t b, bool carry_in,
                    const std::vector<Netlist::LaneFault> &faults,
                    std::vector<std::uint64_t> &outputs,
                    std::vector<std::uint64_t> &scratch) const;

  private:
    FuLibrary() = default;

    IntAdderCircuit intAdd;
    IntMultiplierCircuit intMul;
    FpAdderCircuit fpAdd;
    FpMultiplierCircuit fpMul;

    // Lazy per-circuit collapse caches (index: FuCircuit value - 1).
    mutable std::once_flag collapseOnce[4];
    mutable std::unique_ptr<CollapsedFaultSet> collapseCache[4];
};

} // namespace harpo::gates

#endif // HARPOCRATES_GATES_FU_LIBRARY_HH
