/**
 * @file
 * The campaign's durable append-only journal.
 *
 * Every state transition of the work queue — lease granted / renewed
 * / released / recovered, shard completed, shard failed, shard
 * quarantined — is appended as one checksummed record and flushed
 * before the transition takes effect anywhere else, so the journal is
 * the single source of truth a restarted process replays to rebuild
 * the queue. The file layout is:
 *
 *   header:  u64 magic | u32 version | u64 specFingerprint
 *   record*: u32 payloadLen | u64 fnv1a(payload) | payload
 *
 * Crash consistency: records are appended whole and flushed; a crash
 * (SIGKILL included) can only leave a *torn tail* — a final record
 * whose length or checksum does not verify. Replay accepts the
 * longest valid prefix and silently discards the tail, which is
 * always safe because a record's effects are never externalized
 * before the record itself is durable (DESIGN.md §11). Anything
 * invalid *before* a valid record (bad magic, wrong fingerprint)
 * is real corruption or misuse and throws harpo::Error{Io}.
 */

#ifndef HARPOCRATES_CAMPAIGN_SERVICE_JOURNAL_HH
#define HARPOCRATES_CAMPAIGN_SERVICE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "faultsim/campaign.hh"
#include "resilience/error.hh"

namespace harpo::campaign
{

/** What happened, as recorded in the journal. */
enum class RecordType : std::uint8_t
{
    LeaseGranted = 1,
    LeaseRenewed = 2,
    LeaseReleased = 3,  ///< voluntary give-back (drain); no failure charged
    LeaseRecovered = 4, ///< dangling lease found at open (worker died)
    ShardDone = 5,
    ShardFailed = 6,
    ShardQuarantined = 7,
};

const char *recordTypeName(RecordType type);

/** One journal record. Fields beyond (type, shard, worker, epoch) are
 *  meaningful only for the types that serialize them. */
struct JournalRecord
{
    RecordType type = RecordType::LeaseGranted;
    std::uint32_t shard = 0;
    std::uint32_t worker = 0;
    std::uint64_t epoch = 0;
    ErrorKind cause = ErrorKind::Internal; ///< Failed / Quarantined
    std::string message;                   ///< Failed / Quarantined
    faultsim::CampaignResult result{};     ///< ShardDone
};

/** Append side of the journal. Thread-compatible (the work queue
 *  serializes access under its own mutex). */
class Journal
{
  public:
    static constexpr std::uint64_t kMagic = 0x314C4E4A5052'4148ull;
    /** Results-format version. v2: run signatures switched to the
     *  word-wise StateHash (isa::computeSignature) and CampaignSpec
     *  gained l1dUpsetSpan — goldenSignature values and spec
     *  fingerprints are incomparable with v1 journals, so resume
     *  requires an exact version match rather than merely <=. */
    static constexpr std::uint32_t kVersion = 2;
    /** Replay refuses records larger than this: no legitimate record
     *  (even a ShardFailed with a long message) comes close, and the
     *  bound keeps a corrupt length field from looking plausible. */
    static constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

    /**
     * Open @p path for appending. A missing or empty file gets a
     * fresh header; an existing one must carry the right magic,
     * version and @p spec_fingerprint (Error{Io} otherwise). A short
     * torn header (crash while creating the journal) is rewritten.
     */
    Journal(const std::string &path, std::uint64_t spec_fingerprint);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Append one record and flush it to the OS (survives process
     *  death). Throws Error{Io} on write failure. */
    void append(const JournalRecord &record);

    /** fsync the file (survives power loss); called on checkpoints
     *  and drains, not per record. */
    void sync();

    std::uint64_t recordsWritten() const { return written; }

    /**
     * Replay the longest valid record prefix of @p path. A missing
     * file replays as empty; a torn tail is discarded; bad header
     * magic/version or a fingerprint mismatch throws Error{Io}.
     */
    static std::vector<JournalRecord>
    replay(const std::string &path, std::uint64_t spec_fingerprint);

  private:
    std::FILE *file = nullptr;
    std::uint64_t written = 0;
};

} // namespace harpo::campaign

#endif // HARPOCRATES_CAMPAIGN_SERVICE_JOURNAL_HH
