#include "campaign_service/results_tree.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "resilience/error.hh"

namespace harpo::campaign
{

namespace
{

namespace fs = std::filesystem;

/** JSON string escaping for program names and error messages. */
std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** tmp + flush + fsync + rename, so readers never see half a file. */
void
writeTextFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw Error::io("results tree: cannot create " + tmp + ": " +
                        std::strerror(errno));
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    if (std::fclose(f) != 0 || !wrote) {
        std::remove(tmp.c_str());
        throw Error::io("results tree: write failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw Error::io("results tree: rename failed for " + path);
    }
}

void
appendCounters(std::string &out, const faultsim::CampaignResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "\"injections\": %u, \"masked\": %u, \"sdc\": %u, "
        "\"crash\": %u, \"hang\": %u, \"hw_corrected\": %u, "
        "\"hw_detected\": %u, \"failed_injections\": %u, "
        "\"injected_faults\": %u, \"collapse_pruned\": %u, "
        "\"golden_cycles\": %llu, \"golden_signature\": %llu, ",
        r.total(), r.masked, r.sdc, r.crash, r.hang, r.hwCorrected,
        r.hwDetected, r.failedInjections, r.injectedFaults,
        r.collapsePruned,
        static_cast<unsigned long long>(r.goldenCycles),
        static_cast<unsigned long long>(r.goldenSignature));
    out += buf;
    out += "\"detection\": " + formatDouble(r.detection());
}

std::string
shardJson(const CampaignSpec &spec, const ShardSpec &shard,
          const ShardStatus &st)
{
    std::string out = "{";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"shard\": %u, \"program\": \"%s\", "
                  "\"target\": \"%s\", \"sample\": %u, "
                  "\"seed\": %llu, \"state\": \"%s\", ",
                  shard.id,
                  jsonEscaped(spec.programs[shard.programIndex].name)
                      .c_str(),
                  coverage::structureName(shard.target),
                  shard.sampleIndex,
                  static_cast<unsigned long long>(shard.seed),
                  shardStateName(st.state));
    out += buf;
    if (st.state == ShardState::Done) {
        appendCounters(out, st.result);
    } else {
        out += "\"cause\": \"";
        out += errorKindName(st.cause);
        out += "\", \"message\": \"" + jsonEscaped(st.causeMessage) +
               "\"";
    }
    out += "}\n";
    return out;
}

} // namespace

MergeSummary
writeResultsTree(const DurableWorkQueue &queue)
{
    const CampaignSpec &spec = queue.spec();
    const std::vector<ShardSpec> &shards = queue.shards();

    MergeSummary summary;
    summary.shards = static_cast<unsigned>(shards.size());

    std::vector<ShardStatus> statuses;
    statuses.reserve(shards.size());
    for (const ShardSpec &shard : shards) {
        const ShardStatus st = queue.status(shard.id);
        if (st.state != ShardState::Done &&
            st.state != ShardState::Quarantined)
            throw Error::internal(
                "results tree: shard " + std::to_string(shard.id) +
                " unresolved (" + shardStateName(st.state) +
                "); merge requires a fully resolved campaign");
        statuses.push_back(st);
    }

    const std::string root = queue.directory() + "/results";

    // ---- Per-shard leaves, in spec (= id) order. ----
    for (const ShardSpec &shard : shards) {
        const std::string pairDir =
            root + "/" +
            sanitizedName(spec.programs[shard.programIndex].name) +
            "/" + coverage::structureName(shard.target);
        fs::create_directories(pairDir);
        char leaf[32];
        std::snprintf(leaf, sizeof(leaf), "/shard-%03u.json",
                      shard.sampleIndex);
        writeTextFileAtomic(pairDir + leaf,
                            shardJson(spec, shard, statuses[shard.id]));
    }

    // ---- merged.json: per-pair aggregation + quarantine report. ----
    std::string merged = "{\"schema\": 1, ";
    for (const ShardStatus &st : statuses) {
        summary.done += st.state == ShardState::Done;
        summary.quarantined += st.state == ShardState::Quarantined;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"shards\": %u, \"done\": %u, "
                  "\"quarantined\": %u, \"pairs\": [",
                  summary.shards, summary.done, summary.quarantined);
    merged += buf;

    bool firstPair = true;
    for (std::uint32_t p = 0; p < spec.programs.size(); ++p) {
        for (const coverage::TargetStructure target : spec.targets) {
            faultsim::CampaignResult sum;
            unsigned pairShards = 0, pairDone = 0;
            std::string quarantineList;
            for (const ShardSpec &shard : shards) {
                if (shard.programIndex != p || shard.target != target)
                    continue;
                ++pairShards;
                const ShardStatus &st = statuses[shard.id];
                if (st.state == ShardState::Done) {
                    ++pairDone;
                    sum.masked += st.result.masked;
                    sum.sdc += st.result.sdc;
                    sum.crash += st.result.crash;
                    sum.hang += st.result.hang;
                    sum.hwCorrected += st.result.hwCorrected;
                    sum.hwDetected += st.result.hwDetected;
                    sum.failedInjections += st.result.failedInjections;
                    sum.injectedFaults += st.result.injectedFaults;
                    sum.collapsePruned += st.result.collapsePruned;
                    sum.dominanceReplaySkips +=
                        st.result.dominanceReplaySkips;
                    sum.goldenCycles = st.result.goldenCycles;
                    sum.goldenSignature = st.result.goldenSignature;
                } else {
                    if (!quarantineList.empty())
                        quarantineList += ", ";
                    quarantineList +=
                        "{\"shard\": " + std::to_string(shard.id) +
                        ", \"cause\": \"" + errorKindName(st.cause) +
                        "\", \"message\": \"" +
                        jsonEscaped(st.causeMessage) + "\"}";
                }
            }
            if (!firstPair)
                merged += ", ";
            firstPair = false;
            merged += "{\"program\": \"" +
                      jsonEscaped(spec.programs[p].name) +
                      "\", \"target\": \"" +
                      coverage::structureName(target) + "\", ";
            std::snprintf(buf, sizeof(buf),
                          "\"shards\": %u, \"completed\": %u, ",
                          pairShards, pairDone);
            merged += buf;
            appendCounters(merged, sum);
            merged += ", \"quarantined_shards\": [" + quarantineList +
                      "]}";
        }
    }
    merged += "]}\n";

    summary.mergedPath = root + "/merged.json";
    writeTextFileAtomic(summary.mergedPath, merged);
    return summary;
}

bool
resultsTreesIdentical(const std::string &dir_a, const std::string &dir_b,
                      std::string *why)
{
    auto listing = [](const std::string &root) {
        std::vector<std::string> rel;
        if (fs::exists(root)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(root)) {
                if (entry.is_regular_file())
                    rel.push_back(
                        fs::relative(entry.path(), root).string());
            }
        }
        std::sort(rel.begin(), rel.end());
        return rel;
    };
    auto fileBytes = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    const std::vector<std::string> a = listing(dir_a);
    const std::vector<std::string> b = listing(dir_b);
    if (a != b) {
        if (why)
            *why = "file sets differ (" + std::to_string(a.size()) +
                   " vs " + std::to_string(b.size()) + " files)";
        return false;
    }
    for (const std::string &rel : a) {
        if (fileBytes(dir_a + "/" + rel) !=
            fileBytes(dir_b + "/" + rel)) {
            if (why)
                *why = "content differs: " + rel;
            return false;
        }
    }
    return true;
}

} // namespace harpo::campaign
