#include "campaign_service/runner.hh"

#include <exception>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "resilience/snapshot_io.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "uarch/core.hh"

namespace harpo::campaign
{

namespace
{

using Clock = DurableWorkQueue::Clock;

constexpr std::uint64_t kStatsMagic = 0x31535453'50524148ull;
constexpr std::uint32_t kStatsVersion = 1;

/** Cumulative cross-restart campaign statistics (stats.snap). */
struct PersistentStats
{
    faultsim::GoldenCacheStats cache{};
    std::uint64_t failedAttempts = 0;
    std::uint64_t expiredLeases = 0;
    std::uint64_t recoveredLeases = 0;
    std::uint64_t invocations = 0;
};

std::string
statsPath(const std::string &dir)
{
    return dir + "/stats.snap";
}

PersistentStats
loadStats(const std::string &dir)
{
    PersistentStats stats;
    try {
        const std::vector<std::uint8_t> payload =
            resilience::readSnapshotFile(statsPath(dir), kStatsMagic,
                                         kStatsVersion);
        resilience::SnapshotReader r(payload);
        stats.cache.hits = r.u64();
        stats.cache.misses = r.u64();
        stats.cache.evictions = r.u64();
        stats.failedAttempts = r.u64();
        stats.expiredLeases = r.u64();
        stats.recoveredLeases = r.u64();
        stats.invocations = r.u64();
    } catch (const Error &) {
        // Missing or torn stats checkpoint: start cumulative counts
        // from zero — stats are reporting, never correctness.
        stats = PersistentStats{};
    }
    return stats;
}

void
saveStats(const std::string &dir, const PersistentStats &stats)
{
    resilience::SnapshotWriter w;
    w.u64(stats.cache.hits);
    w.u64(stats.cache.misses);
    w.u64(stats.cache.evictions);
    w.u64(stats.failedAttempts);
    w.u64(stats.expiredLeases);
    w.u64(stats.recoveredLeases);
    w.u64(stats.invocations);
    resilience::writeSnapshotFile(statsPath(dir), kStatsMagic,
                                  kStatsVersion, w.bytes());
}

} // namespace

CampaignRunner::CampaignRunner(const std::string &dir_,
                               const RunnerConfig &config_)
    : dir(dir_), config(config_), workQueue(dir_, config_.queue)
{
}

bool
CampaignRunner::cancelRequested() const
{
    return config.cancel && config.cancel->cancelled();
}

void
CampaignRunner::runShard(std::uint32_t index, const Lease &lease)
{
    const ShardSpec &shard = workQueue.shards()[lease.shard];
    const isa::TestProgram &program =
        workQueue.spec().programs[shard.programIndex];

    faultsim::CampaignConfig shardCfg =
        workQueue.spec().shardConfig(shard);
    shardCfg.budget.deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                std::chrono::duration<double>(config.queue.leaseDuration)
                    .count() *
                config.shardDeadlineFrac));
    shardCfg.budget.cancel = config.cancel;

    try {
        faultsim::CampaignResult result;
        if (config.executor) {
            result = config.executor(shard, shardCfg);
        } else {
            // Phase 1 — golden acquisition. Usually a warm-cache hit
            // across the shard's siblings; when cold it is the long
            // pole of the shard, so the lease is renewed right after
            // as a heartbeat before the injection phase starts.
            uarch::CoreConfig goldenCfg = shardCfg.core;
            goldenCfg.budget = &shardCfg.budget;
            faultsim::FaultCampaign::measureAllCoverageCached(
                program, goldenCfg);
            if (!workQueue.renew(lease, Clock::now()))
                return; // lease lost while goldening; re-dispatched
            // Phase 2 — the seeded injection campaign.
            result = faultsim::FaultCampaign::run(program, shardCfg);
        }
        if (cancelRequested()) {
            workQueue.release(lease); // drain: no failure charged
            return;
        }
        if (result.truncated) {
            failedAttempts.fetch_add(1);
            workQueue.fail(lease, ErrorKind::Budget,
                           "shard budget expired before the sample "
                           "completed",
                           Clock::now());
            return;
        }
        if (!result.goldenOk) {
            failedAttempts.fetch_add(1);
            workQueue.fail(lease, ErrorKind::BadProgram,
                           "golden run failed: unusable test program",
                           Clock::now());
            return;
        }
        workQueue.complete(lease, result);
    } catch (const Error &e) {
        if (e.kind() == ErrorKind::Budget && cancelRequested()) {
            workQueue.release(lease);
            return;
        }
        failedAttempts.fetch_add(1);
        workQueue.fail(lease, e.kind(), e.what(), Clock::now());
    } catch (const std::exception &e) {
        failedAttempts.fetch_add(1);
        workQueue.fail(lease, ErrorKind::Internal, e.what(),
                       Clock::now());
    } catch (...) {
        failedAttempts.fetch_add(1);
        workQueue.fail(lease, ErrorKind::Internal,
                       "unknown worker exception", Clock::now());
    }
    (void)index;
}

void
CampaignRunner::workerLoop(std::uint32_t index)
{
    for (;;) {
        if (stopWorkers.load(std::memory_order_relaxed))
            break;
        if (index >= targetWorkers.load(std::memory_order_relaxed))
            break; // degradation shrank the pool under us
        if (cancelRequested())
            break;
        const std::optional<Lease> lease =
            workQueue.tryLease(index, Clock::now());
        if (!lease) {
            if (workQueue.allResolved())
                break;
            std::unique_lock<std::mutex> lock(wakeMutex);
            wakeCv.wait_for(lock, config.idlePause);
            continue;
        }
        runShard(index, *lease);
        // The lease is resolved (complete / fail / release) by now;
        // wake the supervisor and any idle workers immediately.
        wakeCv.notify_all();
    }
    wakeCv.notify_all();
}

RunnerReport
CampaignRunner::run()
{
    HARPO_TRACE_SPAN("campaign_service", "campaign");
    static const telemetry::MetricId workerGauge =
        telemetry::MetricsRegistry::instance().gauge(
            "campaign_service.active_workers");

    RunnerReport report;
    report.shards = static_cast<unsigned>(workQueue.shards().size());
    report.recoveredLeases = workQueue.recoveredLeases();
    report.replayedRecords = workQueue.replayedRecords();

    // Cumulative stats: restore the persisted counters into the
    // golden cache when this is a fresh process (the crash-resume
    // path), so live metrics report campaign-cumulative hit/miss
    // counts; otherwise accumulate by delta.
    PersistentStats prior = loadStats(dir);
    const faultsim::GoldenCacheStats baseline =
        faultsim::FaultCampaign::goldenCacheStats();
    const bool freshProcess = baseline.hits == 0 &&
                              baseline.misses == 0 &&
                              baseline.evictions == 0;
    if (freshProcess)
        faultsim::FaultCampaign::restoreGoldenCacheStats(prior.cache);

    const unsigned unresolved =
        report.shards -
        (workQueue.doneCount() + workQueue.quarantinedCount());
    const unsigned initialWorkers = std::max(
        1u, std::min(std::max(config.workers, 1u),
                     std::max(unresolved, 1u)));
    report.initialWorkers = initialWorkers;
    targetWorkers.store(initialWorkers);
    telemetry::setGauge(workerGauge,
                        static_cast<std::int64_t>(initialWorkers));

    std::vector<std::thread> workers;
    workers.reserve(initialWorkers);
    for (std::uint32_t i = 0; i < initialWorkers; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });

    unsigned expiredTotal = 0;
    while (!workQueue.allResolved() && !cancelRequested()) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex);
            wakeCv.wait_for(lock, config.supervisorTick, [this] {
                return workQueue.allResolved() || cancelRequested();
            });
        }
        const unsigned expired = workQueue.expireStale(Clock::now());
        if (expired > 0) {
            expiredTotal += expired;
            if (config.lossesBeforeShrink > 0) {
                const unsigned shrink =
                    expiredTotal / config.lossesBeforeShrink;
                const unsigned newTarget = initialWorkers > shrink
                                               ? initialWorkers - shrink
                                               : 1u;
                if (newTarget <
                    targetWorkers.load(std::memory_order_relaxed)) {
                    targetWorkers.store(newTarget);
                    telemetry::setGauge(
                        workerGauge,
                        static_cast<std::int64_t>(newTarget));
                    warn("campaign_service: shrinking parallelism to " +
                         std::to_string(newTarget) + " after " +
                         std::to_string(expiredTotal) +
                         " lease expiries");
                    if (auto *sink = telemetry::TraceSink::current())
                        sink->note(
                            "campaign_service: degrade workers=" +
                            std::to_string(newTarget) +
                            " expiries=" +
                            std::to_string(expiredTotal));
                }
            }
        }
    }

    stopWorkers.store(true);
    wakeCv.notify_all();
    for (std::thread &t : workers)
        t.join();
    telemetry::setGauge(workerGauge, 0);

    report.expiredLeases = expiredTotal;
    report.failedAttempts = failedAttempts.load();
    report.finalWorkers = targetWorkers.load();
    report.done = workQueue.doneCount();
    report.quarantined = workQueue.quarantinedCount();
    report.drained = !workQueue.allResolved();

    if (!report.drained) {
        const MergeSummary merge = writeResultsTree(workQueue);
        report.merged = true;
        report.mergedPath = merge.mergedPath;
    }

    // Checkpoint: durable journal tail + cumulative stats, on both
    // the completion and the drain path (SIGTERM exits cleanly).
    workQueue.sync();
    const faultsim::GoldenCacheStats now =
        faultsim::FaultCampaign::goldenCacheStats();
    PersistentStats cumulative = prior;
    if (freshProcess) {
        cumulative.cache = now; // counters already carry prior
    } else {
        cumulative.cache.hits = prior.cache.hits + now.hits -
                                baseline.hits;
        cumulative.cache.misses = prior.cache.misses + now.misses -
                                  baseline.misses;
        cumulative.cache.evictions = prior.cache.evictions +
                                     now.evictions -
                                     baseline.evictions;
    }
    cumulative.failedAttempts += report.failedAttempts;
    cumulative.expiredLeases += report.expiredLeases;
    cumulative.recoveredLeases += report.recoveredLeases;
    cumulative.invocations += 1;
    saveStats(dir, cumulative);
    report.cacheStats = cumulative.cache;

    if (auto *sink = telemetry::TraceSink::current())
        sink->note("campaign_service: " +
                   std::string(report.drained ? "drained" : "resolved") +
                   " done=" + std::to_string(report.done) +
                   " quarantined=" +
                   std::to_string(report.quarantined) + " expired=" +
                   std::to_string(report.expiredLeases));
    return report;
}

} // namespace harpo::campaign
