#include "campaign_service/shard.hh"

#include <cmath>
#include <unordered_set>

#include "common/hash.hh"
#include "isa/encoding.hh"
#include "resilience/error.hh"

namespace harpo::campaign
{

std::vector<ShardSpec>
CampaignSpec::shards() const
{
    std::vector<ShardSpec> list;
    list.reserve(programs.size() * targets.size() * samplesPerPair);
    std::uint32_t id = 0;
    for (std::uint32_t p = 0; p < programs.size(); ++p) {
        for (const coverage::TargetStructure target : targets) {
            for (std::uint32_t s = 0; s < samplesPerPair; ++s) {
                ShardSpec shard;
                shard.id = id++;
                shard.programIndex = p;
                shard.target = target;
                shard.sampleIndex = s;
                Fnv1a h;
                h.addWord(seed);
                h.addWord(shard.id);
                shard.seed = h.value();
                shard.numInjections = injectionsPerShard;
                list.push_back(shard);
            }
        }
    }
    return list;
}

faultsim::CampaignConfig
CampaignSpec::shardConfig(const ShardSpec &shard) const
{
    faultsim::CampaignConfig cfg =
        faultsim::CampaignConfig::forTarget(shard.target);
    cfg.numInjections = shard.numInjections;
    cfg.seed = shard.seed;
    cfg.parallel = shardParallel;
    cfg.hangMultiplier = hangMultiplier;
    cfg.hangSlackCycles = hangSlackCycles;
    cfg.faultCollapsing = faultCollapsing;
    cfg.l1dUpsetSpan = l1dUpsetSpan;
    cfg.validate();
    return cfg;
}

std::uint64_t
CampaignSpec::fingerprint() const
{
    resilience::SnapshotWriter w;
    serialize(w);
    Fnv1a h;
    h.addBytes(w.bytes().data(), w.bytes().size());
    return h.value();
}

void
CampaignSpec::validate() const
{
    if (programs.empty())
        throw Error::internal("CampaignSpec: no programs");
    if (targets.empty())
        throw Error::internal("CampaignSpec: no targets");
    if (injectionsPerShard == 0)
        throw Error::internal("CampaignSpec: injectionsPerShard == 0");
    if (samplesPerPair == 0)
        throw Error::internal("CampaignSpec: samplesPerPair == 0");
    if (!(hangMultiplier > 0.0) || !std::isfinite(hangMultiplier))
        throw Error::internal(
            "CampaignSpec: hangMultiplier must be finite and > 0");
    if (l1dUpsetSpan < 1 || l1dUpsetSpan > 255)
        throw Error::internal(
            "CampaignSpec: l1dUpsetSpan must be in [1, 255]");
    std::unordered_set<std::string> names;
    for (const auto &program : programs) {
        if (program.name.empty())
            throw Error::internal(
                "CampaignSpec: program with empty name");
        if (!names.insert(sanitizedName(program.name)).second)
            throw Error::internal(
                "CampaignSpec: duplicate program name (after path "
                "sanitization): " +
                program.name);
    }
}

std::string
sanitizedName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
serializeProgram(resilience::SnapshotWriter &w,
                 const isa::TestProgram &program)
{
    w.u32(static_cast<std::uint32_t>(program.name.size()));
    for (const char c : program.name)
        w.u8(static_cast<std::uint8_t>(c));
    const std::vector<std::uint8_t> code =
        isa::encodeProgram(program.code);
    w.u64(code.size());
    for (const std::uint8_t b : code)
        w.u8(b);
    for (const std::uint64_t v : program.initGpr)
        w.u64(v);
    for (const auto &lanes : program.initXmm) {
        w.u64(lanes[0]);
        w.u64(lanes[1]);
    }
    w.u32(static_cast<std::uint32_t>(program.regions.size()));
    for (const auto &r : program.regions) {
        w.u64(r.base);
        w.u32(r.size);
    }
    w.u32(static_cast<std::uint32_t>(program.memInit.size()));
    for (const auto &mi : program.memInit) {
        w.u64(mi.addr);
        w.u64(mi.bytes.size());
        for (const std::uint8_t b : mi.bytes)
            w.u8(b);
    }
    w.u64(program.coreBegin);
    w.u64(program.coreEnd);
}

isa::TestProgram
deserializeProgram(resilience::SnapshotReader &r)
{
    isa::TestProgram program;
    const std::uint32_t nameLen = r.u32();
    if (nameLen > r.remaining())
        throw Error::io("campaign program: implausible name length");
    program.name.reserve(nameLen);
    for (std::uint32_t i = 0; i < nameLen; ++i)
        program.name.push_back(static_cast<char>(r.u8()));
    const std::uint64_t codeLen = r.u64();
    if (codeLen > r.remaining())
        throw Error::io("campaign program: implausible code length");
    std::vector<std::uint8_t> code;
    code.reserve(codeLen);
    for (std::uint64_t i = 0; i < codeLen; ++i)
        code.push_back(r.u8());
    const isa::DecodeResult decoded =
        isa::decodeProgram(code.data(), code.size());
    if (!decoded.ok)
        throw Error::io("campaign program: undecodable code bytes");
    program.code = decoded.code;
    for (auto &v : program.initGpr)
        v = r.u64();
    for (auto &lanes : program.initXmm) {
        lanes[0] = r.u64();
        lanes[1] = r.u64();
    }
    const std::uint32_t numRegions = r.u32();
    if (numRegions > r.remaining() / 12)
        throw Error::io("campaign program: implausible region count");
    program.regions.reserve(numRegions);
    for (std::uint32_t i = 0; i < numRegions; ++i) {
        isa::MemRegion region;
        region.base = r.u64();
        region.size = r.u32();
        program.regions.push_back(region);
    }
    const std::uint32_t numInits = r.u32();
    if (numInits > r.remaining() / 16)
        throw Error::io("campaign program: implausible memInit count");
    program.memInit.reserve(numInits);
    for (std::uint32_t i = 0; i < numInits; ++i) {
        isa::MemInit init;
        init.addr = r.u64();
        const std::uint64_t len = r.u64();
        if (len > r.remaining())
            throw Error::io(
                "campaign program: implausible memInit length");
        init.bytes.reserve(len);
        for (std::uint64_t b = 0; b < len; ++b)
            init.bytes.push_back(r.u8());
        program.memInit.push_back(std::move(init));
    }
    program.coreBegin = r.u64();
    program.coreEnd = r.u64();
    return program;
}

void
serializeResult(resilience::SnapshotWriter &w,
                const faultsim::CampaignResult &result)
{
    w.u32(result.masked);
    w.u32(result.sdc);
    w.u32(result.crash);
    w.u32(result.hang);
    w.u32(result.hwCorrected);
    w.u32(result.hwDetected);
    w.u8(result.goldenOk ? 1 : 0);
    w.u64(result.goldenCycles);
    w.u64(result.goldenSignature);
    w.u8(result.truncated ? 1 : 0);
    w.u32(result.failedInjections);
    w.u32(result.forkedInjections);
    w.u32(result.digestEarlyExits);
    w.u32(result.injectedFaults);
    w.u32(result.collapsePruned);
    w.u32(result.dominanceReplaySkips);
}

faultsim::CampaignResult
deserializeResult(resilience::SnapshotReader &r)
{
    faultsim::CampaignResult result;
    result.masked = r.u32();
    result.sdc = r.u32();
    result.crash = r.u32();
    result.hang = r.u32();
    result.hwCorrected = r.u32();
    result.hwDetected = r.u32();
    result.goldenOk = r.u8() != 0;
    result.goldenCycles = r.u64();
    result.goldenSignature = r.u64();
    result.truncated = r.u8() != 0;
    result.failedInjections = r.u32();
    result.forkedInjections = r.u32();
    result.digestEarlyExits = r.u32();
    result.injectedFaults = r.u32();
    result.collapsePruned = r.u32();
    result.dominanceReplaySkips = r.u32();
    return result;
}

void
CampaignSpec::serialize(resilience::SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(programs.size()));
    for (const auto &program : programs)
        serializeProgram(w, program);
    w.u32(static_cast<std::uint32_t>(targets.size()));
    for (const coverage::TargetStructure t : targets)
        w.u8(static_cast<std::uint8_t>(t));
    w.u32(injectionsPerShard);
    w.u32(samplesPerPair);
    w.u64(seed);
    w.f64(hangMultiplier);
    w.u64(hangSlackCycles);
    w.u8(shardParallel ? 1 : 0);
    w.u8(faultCollapsing ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(l1dUpsetSpan));
}

CampaignSpec
CampaignSpec::deserialize(resilience::SnapshotReader &r)
{
    CampaignSpec spec;
    const std::uint32_t numPrograms = r.u32();
    if (numPrograms > r.remaining())
        throw Error::io("campaign spec: implausible program count");
    spec.programs.reserve(numPrograms);
    for (std::uint32_t i = 0; i < numPrograms; ++i)
        spec.programs.push_back(deserializeProgram(r));
    const std::uint32_t numTargets = r.u32();
    if (numTargets > r.remaining())
        throw Error::io("campaign spec: implausible target count");
    spec.targets.reserve(numTargets);
    for (std::uint32_t i = 0; i < numTargets; ++i) {
        const std::uint8_t raw = r.u8();
        if (raw >= coverage::numTargetStructures)
            throw Error::io("campaign spec: unknown target structure");
        spec.targets.push_back(
            static_cast<coverage::TargetStructure>(raw));
    }
    spec.injectionsPerShard = r.u32();
    spec.samplesPerPair = r.u32();
    spec.seed = r.u64();
    spec.hangMultiplier = r.f64();
    spec.hangSlackCycles = r.u64();
    spec.shardParallel = r.u8() != 0;
    spec.faultCollapsing = r.u8() != 0;
    spec.l1dUpsetSpan = r.u8();
    spec.validate();
    return spec;
}

} // namespace harpo::campaign
