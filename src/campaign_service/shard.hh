/**
 * @file
 * Campaign sharding: the unit of durable, re-dispatchable work.
 *
 * A campaign scans a set of test programs against a set of target
 * structures. The (program × structure) grid is further split into
 * independent *fault samples* — each shard runs its own seeded SFI
 * campaign over a slice of the statistical sample — so the work queue
 * has many small, idempotent shards to lease out, retry and recover
 * instead of a few monolithic campaigns. A shard is a pure function
 * of the CampaignSpec: equal specs produce equal shard lists, equal
 * shard seeds, and therefore equal shard results, which is what makes
 * a journal-replayed resume bit-identical to an uninterrupted run
 * (DESIGN.md §11).
 */

#ifndef HARPOCRATES_CAMPAIGN_SERVICE_SHARD_HH
#define HARPOCRATES_CAMPAIGN_SERVICE_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/measure.hh"
#include "faultsim/campaign.hh"
#include "isa/program.hh"
#include "resilience/snapshot_io.hh"

namespace harpo::campaign
{

/** One leaseable unit of campaign work. */
struct ShardSpec
{
    std::uint32_t id = 0;           ///< dense index into the shard list
    std::uint32_t programIndex = 0; ///< into CampaignSpec::programs
    coverage::TargetStructure target =
        coverage::TargetStructure::IntRegFile;
    std::uint32_t sampleIndex = 0; ///< which fault-sample slice
    std::uint64_t seed = 0;        ///< derived; equal specs ⇒ equal seeds
    unsigned numInjections = 0;
};

/**
 * The durable definition of a whole campaign. Serialized into the
 * campaign directory's manifest, so a resumed process reconstructs
 * the exact same programs, targets and shard list without help from
 * the process that created the campaign.
 */
struct CampaignSpec
{
    /** Programs under scan. Each must carry a unique, non-empty
     *  TestProgram::name — the results tree is laid out by it. */
    std::vector<isa::TestProgram> programs;

    std::vector<coverage::TargetStructure> targets;

    /** Injections per shard (each shard is one seeded SFI slice). */
    unsigned injectionsPerShard = 50;

    /** Fault-sample slices per (program × target) pair. */
    unsigned samplesPerPair = 2;

    /** Campaign seed; shard seeds derive from it and the shard id. */
    std::uint64_t seed = 1;

    // Per-shard campaign knobs (forwarded into each shard's
    // CampaignConfig; everything else stays at forTarget defaults).
    double hangMultiplier = 3.0;
    std::uint64_t hangSlackCycles = 10000;

    /** Intra-shard injection parallelism. Off by default: the runner
     *  parallelises *across* shards, and serial shards keep per-shard
     *  runtimes predictable for lease sizing. */
    bool shardParallel = false;

    /** Structural fault collapsing on each shard's gate-level
     *  campaign (CampaignConfig::faultCollapsing). Shard counters
     *  always cover the uncollapsed sample, so merged results are
     *  bit-identical either way; off is the differential oracle. */
    bool faultCollapsing = true;

    /** Adjacent-bit upset width for L1D transient shards
     *  (CampaignConfig::l1dUpsetSpan); 1 is the single-bit model. */
    unsigned l1dUpsetSpan = 1;

    /** The full shard list, in id order. Pure function of the spec. */
    std::vector<ShardSpec> shards() const;

    /** The per-shard fault-campaign configuration (validated). */
    faultsim::CampaignConfig shardConfig(const ShardSpec &shard) const;

    /** Content fingerprint over the serialized spec; binds a journal
     *  to the manifest it was written against. */
    std::uint64_t fingerprint() const;

    /** Throws harpo::Error{Internal} on an unusable spec (no
     *  programs/targets, duplicate or empty program names, zero
     *  injections or samples, invalid hang parameters). */
    void validate() const;

    void serialize(resilience::SnapshotWriter &w) const;
    static CampaignSpec deserialize(resilience::SnapshotReader &r);
};

/** Filesystem-safe form of a program name (results-tree directory). */
std::string sanitizedName(const std::string &name);

// ---- Serialization helpers shared by the manifest and journal ----

void serializeProgram(resilience::SnapshotWriter &w,
                      const isa::TestProgram &program);
isa::TestProgram deserializeProgram(resilience::SnapshotReader &r);

void serializeResult(resilience::SnapshotWriter &w,
                     const faultsim::CampaignResult &result);
faultsim::CampaignResult deserializeResult(resilience::SnapshotReader &r);

} // namespace harpo::campaign

#endif // HARPOCRATES_CAMPAIGN_SERVICE_SHARD_HH
