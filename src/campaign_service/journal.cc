#include "campaign_service/journal.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "campaign_service/shard.hh"
#include "common/hash.hh"
#include "resilience/snapshot_io.hh"

namespace harpo::campaign
{

namespace
{

constexpr std::size_t kHeaderBytes = 8 + 4 + 8;

void
putLe(std::uint8_t *out, std::uint64_t v, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getLe(const std::uint8_t *in, int n)
{
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

std::vector<std::uint8_t>
encodeRecord(const JournalRecord &record)
{
    resilience::SnapshotWriter w;
    w.u8(static_cast<std::uint8_t>(record.type));
    w.u32(record.shard);
    w.u32(record.worker);
    w.u64(record.epoch);
    switch (record.type) {
      case RecordType::ShardDone:
        serializeResult(w, record.result);
        break;
      case RecordType::ShardFailed:
      case RecordType::ShardQuarantined: {
        w.u8(static_cast<std::uint8_t>(record.cause));
        w.u32(static_cast<std::uint32_t>(record.message.size()));
        for (const char c : record.message)
            w.u8(static_cast<std::uint8_t>(c));
        break;
      }
      default:
        break;
    }
    return w.bytes();
}

JournalRecord
decodeRecord(std::vector<std::uint8_t> payload)
{
    resilience::SnapshotReader r(std::move(payload));
    JournalRecord record;
    const std::uint8_t rawType = r.u8();
    if (rawType < static_cast<std::uint8_t>(RecordType::LeaseGranted) ||
        rawType > static_cast<std::uint8_t>(RecordType::ShardQuarantined))
        throw Error::io("journal: unknown record type");
    record.type = static_cast<RecordType>(rawType);
    record.shard = r.u32();
    record.worker = r.u32();
    record.epoch = r.u64();
    switch (record.type) {
      case RecordType::ShardDone:
        record.result = deserializeResult(r);
        break;
      case RecordType::ShardFailed:
      case RecordType::ShardQuarantined: {
        const std::uint8_t rawKind = r.u8();
        if (rawKind > static_cast<std::uint8_t>(ErrorKind::Config))
            throw Error::io("journal: unknown error kind");
        record.cause = static_cast<ErrorKind>(rawKind);
        const std::uint32_t len = r.u32();
        if (len != r.remaining())
            throw Error::io("journal: message length mismatch");
        record.message.reserve(len);
        for (std::uint32_t i = 0; i < len; ++i)
            record.message.push_back(static_cast<char>(r.u8()));
        break;
      }
      default:
        break;
    }
    if (!r.atEnd())
        throw Error::io("journal: trailing bytes in record");
    return record;
}

std::uint64_t
payloadChecksum(const std::vector<std::uint8_t> &payload)
{
    Fnv1a h;
    h.addBytes(payload.data(), payload.size());
    return h.value();
}

} // namespace

const char *
recordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::LeaseGranted: return "lease-granted";
      case RecordType::LeaseRenewed: return "lease-renewed";
      case RecordType::LeaseReleased: return "lease-released";
      case RecordType::LeaseRecovered: return "lease-recovered";
      case RecordType::ShardDone: return "shard-done";
      case RecordType::ShardFailed: return "shard-failed";
      case RecordType::ShardQuarantined: return "shard-quarantined";
    }
    return "unknown";
}

Journal::Journal(const std::string &path, std::uint64_t spec_fingerprint)
{
    // Validate (or detect the absence of) an existing header first.
    bool needHeader = true;
    if (std::FILE *existing = std::fopen(path.c_str(), "rb")) {
        std::uint8_t header[kHeaderBytes];
        const std::size_t got =
            std::fread(header, 1, kHeaderBytes, existing);
        std::fclose(existing);
        if (got == kHeaderBytes) {
            if (getLe(header, 8) != kMagic)
                throw Error::io("journal: bad magic in " + path);
            if (getLe(header + 8, 4) != kVersion)
                throw Error::io(
                    "journal: format version " +
                    std::to_string(getLe(header + 8, 4)) + " in " +
                    path + " does not match this build's version " +
                    std::to_string(kVersion) +
                    " (run signatures are hasher-specific; re-run "
                    "the campaign instead of resuming)");
            if (getLe(header + 12, 8) != spec_fingerprint)
                throw Error::io(
                    "journal: campaign fingerprint mismatch in " +
                    path + " (journal belongs to another manifest)");
            needHeader = false;
        }
        // got < kHeaderBytes: torn header from a crash while creating
        // the journal — no record can follow it, rewrite from scratch.
    }

    file = std::fopen(path.c_str(), needHeader ? "wb" : "ab");
    if (!file)
        throw Error::io("journal: cannot open " + path + ": " +
                        std::strerror(errno));
    if (needHeader) {
        std::uint8_t header[kHeaderBytes];
        putLe(header, kMagic, 8);
        putLe(header + 8, kVersion, 4);
        putLe(header + 12, spec_fingerprint, 8);
        if (std::fwrite(header, 1, kHeaderBytes, file) != kHeaderBytes ||
            std::fflush(file) != 0) {
            std::fclose(file);
            file = nullptr;
            throw Error::io("journal: cannot write header to " + path);
        }
    }
}

Journal::~Journal()
{
    if (file) {
        std::fflush(file);
        ::fsync(::fileno(file));
        std::fclose(file);
    }
}

void
Journal::append(const JournalRecord &record)
{
    const std::vector<std::uint8_t> payload = encodeRecord(record);
    std::vector<std::uint8_t> frame(12 + payload.size());
    putLe(frame.data(), payload.size(), 4);
    putLe(frame.data() + 4, payloadChecksum(payload), 8);
    std::memcpy(frame.data() + 12, payload.data(), payload.size());
    // One fwrite per record: stdio buffers the frame whole, so flush
    // failure aside, partial frames only happen at filesystem level
    // (and replay's checksum discards them).
    if (std::fwrite(frame.data(), 1, frame.size(), file) !=
            frame.size() ||
        std::fflush(file) != 0)
        throw Error::io("journal: append failed: " +
                        std::string(std::strerror(errno)));
    ++written;
}

void
Journal::sync()
{
    if (std::fflush(file) != 0 || ::fsync(::fileno(file)) != 0)
        throw Error::io("journal: fsync failed: " +
                        std::string(std::strerror(errno)));
}

std::vector<JournalRecord>
Journal::replay(const std::string &path, std::uint64_t spec_fingerprint)
{
    std::vector<JournalRecord> records;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return records; // no journal yet: empty campaign history

    std::uint8_t header[kHeaderBytes];
    const std::size_t got = std::fread(header, 1, kHeaderBytes, f);
    if (got < kHeaderBytes) {
        std::fclose(f); // torn header: nothing durable followed it
        return records;
    }
    if (getLe(header, 8) != kMagic) {
        std::fclose(f);
        throw Error::io("journal: bad magic in " + path);
    }
    if (getLe(header + 8, 4) != kVersion) {
        std::fclose(f);
        throw Error::io(
            "journal: format version " +
            std::to_string(getLe(header + 8, 4)) + " in " + path +
            " does not match this build's version " +
            std::to_string(kVersion) +
            " (run signatures are hasher-specific; re-run the "
            "campaign instead of resuming)");
    }
    if (getLe(header + 12, 8) != spec_fingerprint) {
        std::fclose(f);
        throw Error::io("journal: campaign fingerprint mismatch in " +
                        path);
    }

    for (;;) {
        std::uint8_t frameHeader[12];
        if (std::fread(frameHeader, 1, 12, f) != 12)
            break; // clean end or torn length/checksum: stop
        const std::uint64_t len = getLe(frameHeader, 4);
        const std::uint64_t checksum = getLe(frameHeader + 4, 8);
        if (len == 0 || len > kMaxRecordBytes)
            break; // implausible length: torn or corrupt tail
        std::vector<std::uint8_t> payload(len);
        if (std::fread(payload.data(), 1, len, f) != len)
            break; // torn payload
        if (payloadChecksum(payload) != checksum)
            break; // corrupt tail
        try {
            records.push_back(decodeRecord(std::move(payload)));
        } catch (const Error &) {
            break; // checksummed but undecodable: treat as tail
        }
    }
    std::fclose(f);
    return records;
}

} // namespace harpo::campaign
