/**
 * @file
 * Durable sharded work queue with leases, retries and quarantine.
 *
 * The queue's persistent identity is a campaign directory:
 *
 *   <dir>/manifest.snap   atomic versioned CampaignSpec snapshot
 *   <dir>/journal.log     append-only state-transition journal
 *
 * The manifest is immutable after create(); all mutable state is the
 * journal, replayed at open. Per-shard lifecycle:
 *
 *             ┌──────────── lease expiry / release ─────────────┐
 *             v                                                 │
 *   Pending ──── tryLease ────> Leased ──── complete ────> Done │
 *      ^                          │ fail                        │
 *      └── backoff(attempts) ─────┴──> (attempts ≥ max) ──> Quarantined
 *
 * Leases are epoch-fenced: complete/fail/renew with a stale epoch is
 * ignored, so a worker that lost its lease (hung past the deadline,
 * shard re-dispatched) cannot corrupt the re-run's outcome. Failed
 * shards become eligible again after a deterministic exponential
 * backoff with bounded jitter; after maxAttempts failures the shard
 * is quarantined with its harpo::ErrorKind cause instead of sinking
 * the campaign. Leases found dangling at open (the previous process
 * died holding them) are recovered to Pending and counted, but do not
 * charge the shard an attempt by default — an external kill is not
 * the shard's fault, and counting it would make resumed results
 * diverge from uninterrupted ones (see QueueConfig::maxRecoveries).
 *
 * All clock-dependent methods take an explicit time_point so tests
 * drive lease expiry and backoff without sleeping.
 */

#ifndef HARPOCRATES_CAMPAIGN_SERVICE_WORK_QUEUE_HH
#define HARPOCRATES_CAMPAIGN_SERVICE_WORK_QUEUE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign_service/journal.hh"
#include "campaign_service/shard.hh"

namespace harpo::campaign
{

/** Retry / lease policy. */
struct QueueConfig
{
    /** Failures before a shard is quarantined as poison. */
    unsigned maxAttempts = 4;

    /** Crash recoveries before quarantine; 0 (default) disables
     *  counting recoveries toward quarantine, which keeps resumed
     *  campaigns bit-identical under arbitrary external kills. Set a
     *  small positive value in production fleets where a poison shard
     *  may be killing its *worker process* rather than failing. */
    unsigned maxRecoveries = 0;

    /** Exponential backoff after a failure: the n-th failure delays
     *  the shard by min(cap, base·2^(n−1)) scaled by a deterministic
     *  jitter factor in [1−jitter, 1+jitter]. */
    double backoffBaseMs = 25.0;
    double backoffCapMs = 2000.0;
    double backoffJitterFrac = 0.25;

    /** How long a granted lease lasts without renewal. */
    std::chrono::milliseconds leaseDuration{30000};
};

/** A granted lease (a capability to resolve one shard). */
struct Lease
{
    std::uint32_t shard = 0;
    std::uint32_t worker = 0;
    std::uint64_t epoch = 0;
    std::chrono::steady_clock::time_point deadline{};
};

enum class ShardState : std::uint8_t
{
    Pending,
    Leased,
    Done,
    Quarantined,
};

const char *shardStateName(ShardState state);

/** Runtime status of one shard (in-memory; rebuilt from the journal). */
struct ShardStatus
{
    ShardState state = ShardState::Pending;
    unsigned failures = 0;
    unsigned recoveries = 0;
    std::uint64_t epoch = 0; ///< most recently granted lease epoch
    std::uint32_t worker = 0;
    std::chrono::steady_clock::time_point leaseDeadline{};
    std::chrono::steady_clock::time_point notBefore{}; ///< backoff gate
    faultsim::CampaignResult result{};                 ///< when Done
    ErrorKind cause = ErrorKind::Internal; ///< when Quarantined
    std::string causeMessage;              ///< when Quarantined
};

/** The durable queue. All methods are thread-safe. */
class DurableWorkQueue
{
  public:
    using Clock = std::chrono::steady_clock;

    static constexpr std::uint64_t kManifestMagic =
        0x31464E4D50524148ull; // "HARPMNF1"
    static constexpr std::uint32_t kManifestVersion = 1;

    /** Lay down a fresh campaign directory (creating it if needed):
     *  manifest + empty journal. Throws Error{Io} when a manifest is
     *  already present — opening resumes, creating never clobbers. */
    static void create(const std::string &dir, const CampaignSpec &spec);

    /** True when @p dir holds a campaign manifest. */
    static bool exists(const std::string &dir);

    /** Open (resume) the campaign in @p dir: load the manifest,
     *  replay the journal, recover dangling leases. */
    DurableWorkQueue(const std::string &dir, const QueueConfig &config);

    const CampaignSpec &spec() const { return campaignSpec; }
    const std::vector<ShardSpec> &shards() const { return shardList; }
    const std::string &directory() const { return dir; }
    std::uint64_t specFingerprint() const { return fingerprint; }

    /** Lease the lowest-id eligible shard (Pending, past its backoff
     *  gate). Returns nothing when no shard is currently eligible. */
    std::optional<Lease> tryLease(std::uint32_t worker,
                                  Clock::time_point now);

    /** Heartbeat: extend the lease deadline. False when the lease is
     *  stale (expired and re-dispatched, or shard resolved). */
    bool renew(const Lease &lease, Clock::time_point now);

    /** Resolve the leased shard with a final result. False (and no
     *  state change) when the lease is stale. */
    bool complete(const Lease &lease,
                  const faultsim::CampaignResult &result);

    /** Voluntarily give the shard back (drain path). No failure is
     *  charged and no backoff applies. False when stale. */
    bool release(const Lease &lease);

    /** Charge a failure: the shard re-enters Pending behind its
     *  backoff gate, or Quarantined once maxAttempts is reached.
     *  False when the lease is stale. */
    bool fail(const Lease &lease, ErrorKind cause,
              const std::string &message, Clock::time_point now);

    /** Expire overdue leases back to Pending (re-dispatch); returns
     *  how many expired. Run from the supervisor tick. */
    unsigned expireStale(Clock::time_point now);

    /** Every shard Done or Quarantined. */
    bool allResolved() const;

    unsigned doneCount() const;
    unsigned quarantinedCount() const;
    unsigned pendingCount() const;
    unsigned leasedCount() const;

    /** Dangling leases recovered when this queue was opened. */
    unsigned recoveredLeases() const { return recovered; }

    /** Journal records replayed when this queue was opened (zero on a
     *  freshly created campaign: the telltale of a resume). */
    std::uint64_t replayedRecords() const { return replayed; }

    ShardStatus status(std::uint32_t shard) const;

    /** The deterministic backoff delay charged after the @p failures
     *  -th failure of a shard seeded @p shard_seed (exposed for tests
     *  and for DESIGN.md's schedule argument). */
    static double backoffDelayMs(const QueueConfig &config,
                                 std::uint64_t shard_seed,
                                 unsigned failures);

    /** fsync the journal (checkpoint / drain). */
    void sync();

  private:
    void applyRecord(const JournalRecord &record);

    std::string dir;
    QueueConfig config;
    CampaignSpec campaignSpec;
    std::uint64_t fingerprint = 0;
    std::vector<ShardSpec> shardList;

    mutable std::mutex mu;
    std::vector<ShardStatus> statuses;
    std::unique_ptr<Journal> journal;
    std::uint64_t nextEpoch = 1;
    unsigned recovered = 0;
    std::uint64_t replayed = 0;
};

} // namespace harpo::campaign

#endif // HARPOCRATES_CAMPAIGN_SERVICE_WORK_QUEUE_HH
