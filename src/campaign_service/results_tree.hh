/**
 * @file
 * Deterministic campaign results tree (Hippocrates-style layout).
 *
 * When every shard is resolved the runner materializes
 *
 *   <dir>/results/<program>/<target>/shard-NNN.json
 *   <dir>/results/merged.json
 *
 * from queue state alone. Shard results are deterministic functions
 * of the campaign spec (seeded SFI), the tree is written in spec
 * order with fixed formatting and no timestamps, and every file goes
 * down atomically (tmp + rename) — so a campaign killed at any point
 * and resumed from its journal produces a byte-identical tree to an
 * uninterrupted run. Quarantined shards are *reported* in the tree
 * (cause and all), never silently dropped.
 */

#ifndef HARPOCRATES_CAMPAIGN_SERVICE_RESULTS_TREE_HH
#define HARPOCRATES_CAMPAIGN_SERVICE_RESULTS_TREE_HH

#include <string>

#include "campaign_service/work_queue.hh"

namespace harpo::campaign
{

/** What writeResultsTree laid down. */
struct MergeSummary
{
    unsigned shards = 0;
    unsigned done = 0;
    unsigned quarantined = 0;
    std::string mergedPath; ///< <dir>/results/merged.json
};

/**
 * Write the full results tree for @p queue under its campaign
 * directory. Requires every shard resolved (Done or Quarantined) —
 * throws harpo::Error{Internal} otherwise, because a partial tree
 * would break the bit-identical-resume contract.
 */
MergeSummary writeResultsTree(const DurableWorkQueue &queue);

/**
 * Byte-compare two results trees (same relative file set, same bytes
 * per file). On mismatch returns false and, when @p why is non-null,
 * stores a one-line description of the first difference. Used by the
 * kill-and-resume self-tests.
 */
bool resultsTreesIdentical(const std::string &dir_a,
                           const std::string &dir_b,
                           std::string *why = nullptr);

} // namespace harpo::campaign

#endif // HARPOCRATES_CAMPAIGN_SERVICE_RESULTS_TREE_HH
