/**
 * @file
 * Crash-safe campaign runner: worker supervision over the durable
 * work queue.
 *
 * A CampaignRunner opens (or resumes) a campaign directory and drives
 * it to resolution with a pool of worker threads under a supervisor:
 *
 *  - workers lease shards, run them as seeded SFI campaigns (golden
 *    acquisition first — a natural heartbeat point — then injection),
 *    and resolve the lease with complete / fail / release;
 *  - each shard runs under a RunBudget whose deadline is a fraction
 *    of the lease, so a hung simulation cancels itself cooperatively
 *    before the lease expires and turns into a retriable failure;
 *  - the supervisor tick expires overdue leases (re-dispatching the
 *    shard; the stale worker is epoch-fenced) and, on repeated worker
 *    loss, shrinks parallelism toward serial — the campaign-level
 *    analogue of the fault campaign's serial-degradation machinery;
 *  - an external CancelToken (SIGTERM) drains: workers stop leasing,
 *    in-flight shards cancel via their budgets and release their
 *    leases, the journal is fsynced and cumulative stats are
 *    checkpointed, and the process can exit cleanly;
 *  - when every shard is Done or Quarantined the runner merges the
 *    deterministic results tree (results_tree.hh).
 *
 * Golden-run cache hit/miss/eviction counters are persisted in
 * <dir>/stats.snap and restored on resume, so a restarted campaign
 * reports cumulative cache effectiveness instead of resetting to
 * zero.
 */

#ifndef HARPOCRATES_CAMPAIGN_SERVICE_RUNNER_HH
#define HARPOCRATES_CAMPAIGN_SERVICE_RUNNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>

#include "campaign_service/results_tree.hh"
#include "campaign_service/work_queue.hh"
#include "resilience/budget.hh"

namespace harpo::campaign
{

/** Supervision policy. */
struct RunnerConfig
{
    /** Initial worker-thread parallelism (clamped to ≥ 1 and to the
     *  number of unresolved shards). */
    unsigned workers = 4;

    QueueConfig queue{};

    /** Supervisor loop period (lease expiry sweep, gauges). */
    std::chrono::milliseconds supervisorTick{20};

    /** Worker pause when no shard is currently leasable. */
    std::chrono::milliseconds idlePause{5};

    /** Per-shard budget deadline as a fraction of the lease duration,
     *  so a hung shard self-cancels before its lease expires. */
    double shardDeadlineFrac = 0.8;

    /** External drain signal (SIGTERM handler); not owned. */
    const CancelToken *cancel = nullptr;

    /** Lease expiries per parallelism-shrink step (graceful
     *  degradation toward serial); 0 disables shrinking. */
    unsigned lossesBeforeShrink = 2;

    /** Test hook: replaces the built-in shard executor. Must return
     *  the shard's final CampaignResult or throw (a thrown
     *  harpo::Error charges the shard a failure of that kind). */
    std::function<faultsim::CampaignResult(
        const ShardSpec &, const faultsim::CampaignConfig &)>
        executor;
};

/** What one runner invocation did. */
struct RunnerReport
{
    unsigned shards = 0;
    unsigned done = 0;
    unsigned quarantined = 0;
    unsigned failedAttempts = 0; ///< this invocation
    unsigned expiredLeases = 0;  ///< this invocation
    unsigned recoveredLeases = 0; ///< dangling leases found at open
    std::uint64_t replayedRecords = 0; ///< journal records at open
    unsigned initialWorkers = 0;
    unsigned finalWorkers = 0; ///< after any degradation shrink
    bool drained = false;      ///< cancelled before full resolution
    bool merged = false;       ///< results tree written
    std::string mergedPath;
    /** Cumulative across restarts of this campaign (stats.snap). */
    faultsim::GoldenCacheStats cacheStats{};
};

/** Drives one campaign directory to resolution (or drain). */
class CampaignRunner
{
  public:
    /** Opens (resumes) the campaign in @p dir; Error{Io} when the
     *  directory holds no manifest. */
    CampaignRunner(const std::string &dir, const RunnerConfig &config);

    /** Run until every shard is resolved (then merge) or the cancel
     *  token drains the campaign. Call once per runner. */
    RunnerReport run();

    const DurableWorkQueue &queue() const { return workQueue; }

  private:
    void workerLoop(std::uint32_t index);
    void runShard(std::uint32_t index, const Lease &lease);
    bool cancelRequested() const;

    std::string dir;
    RunnerConfig config;
    DurableWorkQueue workQueue;

    std::atomic<unsigned> targetWorkers{1};
    std::atomic<unsigned> failedAttempts{0};
    std::atomic<bool> stopWorkers{false};

    /** Wakes the supervisor (and idle workers) the moment a shard
     *  resolves, so campaign completion is observed immediately
     *  instead of up to one supervisorTick later. */
    std::mutex wakeMutex;
    std::condition_variable wakeCv;
};

} // namespace harpo::campaign

#endif // HARPOCRATES_CAMPAIGN_SERVICE_RUNNER_HH
