#include "campaign_service/work_queue.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/hash.hh"
#include "common/rng.hh"
#include "resilience/snapshot_io.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace harpo::campaign
{

namespace
{

namespace fs = std::filesystem;

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.snap";
}

std::string
journalPath(const std::string &dir)
{
    return dir + "/journal.log";
}

struct QueueMetrics
{
    telemetry::MetricId grants, renewals, expiries, recoveries,
        retries, done, quarantines;

    static const QueueMetrics &
    instance()
    {
        static const QueueMetrics m = [] {
            auto &reg = telemetry::MetricsRegistry::instance();
            QueueMetrics ids;
            ids.grants = reg.counter("campaign_service.lease_grants");
            ids.renewals =
                reg.counter("campaign_service.lease_renewals");
            ids.expiries =
                reg.counter("campaign_service.lease_expiries");
            ids.recoveries =
                reg.counter("campaign_service.lease_recoveries");
            ids.retries = reg.counter("campaign_service.shard_retries");
            ids.done = reg.counter("campaign_service.shards_done");
            ids.quarantines =
                reg.counter("campaign_service.shards_quarantined");
            return ids;
        }();
        return m;
    }
};

void
traceNote(const std::string &text)
{
    if (auto *sink = telemetry::TraceSink::current())
        sink->note(text);
}

} // namespace

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Pending: return "pending";
      case ShardState::Leased: return "leased";
      case ShardState::Done: return "done";
      case ShardState::Quarantined: return "quarantined";
    }
    return "unknown";
}

void
DurableWorkQueue::create(const std::string &dir,
                         const CampaignSpec &spec)
{
    spec.validate();
    fs::create_directories(dir);
    if (fs::exists(manifestPath(dir)))
        throw Error::io("campaign: manifest already present in " + dir +
                        " (open it to resume; create never clobbers)");
    // A journal without a manifest is debris from a broken create;
    // clear it so the fresh campaign does not inherit foreign records.
    fs::remove(journalPath(dir));

    resilience::SnapshotWriter w;
    spec.serialize(w);
    resilience::writeSnapshotFile(manifestPath(dir), kManifestMagic,
                                  kManifestVersion, w.bytes());
    Journal bootstrap(journalPath(dir), spec.fingerprint());
    bootstrap.sync();
}

bool
DurableWorkQueue::exists(const std::string &dir)
{
    return fs::exists(manifestPath(dir));
}

DurableWorkQueue::DurableWorkQueue(const std::string &dir_,
                                   const QueueConfig &config_)
    : dir(dir_), config(config_)
{
    const std::vector<std::uint8_t> payload = resilience::
        readSnapshotFile(manifestPath(dir), kManifestMagic,
                         kManifestVersion);
    resilience::SnapshotReader r(payload);
    campaignSpec = CampaignSpec::deserialize(r);
    fingerprint = campaignSpec.fingerprint();
    shardList = campaignSpec.shards();
    statuses.assign(shardList.size(), ShardStatus{});

    const std::vector<JournalRecord> records =
        Journal::replay(journalPath(dir), fingerprint);
    replayed = records.size();
    for (const JournalRecord &record : records)
        applyRecord(record);

    journal = std::make_unique<Journal>(journalPath(dir), fingerprint);

    // Recover leases the previous process died holding. Recovery is
    // journaled, so recovery *counts* survive further restarts and a
    // genuinely poisonous worker-killing shard can be quarantined via
    // maxRecoveries.
    const auto &metrics = QueueMetrics::instance();
    for (std::uint32_t i = 0; i < statuses.size(); ++i) {
        ShardStatus &st = statuses[i];
        if (st.state != ShardState::Leased)
            continue;
        JournalRecord rec;
        rec.shard = i;
        rec.worker = st.worker;
        rec.epoch = st.epoch;
        st.recoveries += 1;
        ++recovered;
        telemetry::count(metrics.recoveries);
        if (config.maxRecoveries > 0 &&
            st.recoveries >= config.maxRecoveries) {
            rec.type = RecordType::ShardQuarantined;
            rec.cause = ErrorKind::Internal;
            rec.message = "worker died holding the lease " +
                          std::to_string(st.recoveries) +
                          " times (maxRecoveries)";
            journal->append(rec);
            st.state = ShardState::Quarantined;
            st.cause = rec.cause;
            st.causeMessage = rec.message;
            telemetry::count(metrics.quarantines);
            traceNote("campaign_service: quarantine shard=" +
                      std::to_string(i) + " cause=internal (" +
                      rec.message + ")");
        } else {
            rec.type = RecordType::LeaseRecovered;
            journal->append(rec);
            st.state = ShardState::Pending;
            traceNote("campaign_service: lease recover shard=" +
                      std::to_string(i) +
                      " epoch=" + std::to_string(st.epoch));
        }
    }
    if (replayed > 0) {
        static const telemetry::MetricId resumes =
            telemetry::MetricsRegistry::instance().counter(
                "campaign_service.resumes");
        telemetry::count(resumes);
        traceNote("campaign_service: resume dir=" + dir + " shards=" +
                  std::to_string(shardList.size()) + " done=" +
                  std::to_string(doneCount()) + " quarantined=" +
                  std::to_string(quarantinedCount()) + " recovered=" +
                  std::to_string(recovered));
    }
}

void
DurableWorkQueue::applyRecord(const JournalRecord &record)
{
    if (record.shard >= statuses.size())
        return; // foreign/corrupt shard id: ignore defensively
    ShardStatus &st = statuses[record.shard];
    nextEpoch = std::max(nextEpoch, record.epoch + 1);
    switch (record.type) {
      case RecordType::LeaseGranted:
        st.state = ShardState::Leased;
        st.epoch = record.epoch;
        st.worker = record.worker;
        break;
      case RecordType::LeaseRenewed:
        break; // liveness only; no state change to replay
      case RecordType::LeaseReleased:
        if (st.state == ShardState::Leased &&
            st.epoch == record.epoch)
            st.state = ShardState::Pending;
        break;
      case RecordType::LeaseRecovered:
        if (st.state == ShardState::Leased &&
            st.epoch == record.epoch)
            st.state = ShardState::Pending;
        st.recoveries += 1;
        break;
      case RecordType::ShardDone:
        st.state = ShardState::Done;
        st.result = record.result;
        break;
      case RecordType::ShardFailed:
        st.failures += 1;
        st.state = ShardState::Pending;
        // Steady-clock gates are not durable; re-arm the backoff
        // relative to this open so a failing shard cannot hot-loop
        // straight after a restart.
        st.notBefore =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    backoffDelayMs(config,
                                   shardList[record.shard].seed,
                                   st.failures)));
        break;
      case RecordType::ShardQuarantined:
        st.state = ShardState::Quarantined;
        st.cause = record.cause;
        st.causeMessage = record.message;
        break;
    }
}

std::optional<Lease>
DurableWorkQueue::tryLease(std::uint32_t worker, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mu);
    for (std::uint32_t i = 0; i < statuses.size(); ++i) {
        ShardStatus &st = statuses[i];
        if (st.state != ShardState::Pending || now < st.notBefore)
            continue;
        JournalRecord rec;
        rec.type = RecordType::LeaseGranted;
        rec.shard = i;
        rec.worker = worker;
        rec.epoch = nextEpoch++;
        journal->append(rec);
        st.state = ShardState::Leased;
        st.epoch = rec.epoch;
        st.worker = worker;
        st.leaseDeadline = now + config.leaseDuration;
        telemetry::count(QueueMetrics::instance().grants);
        traceNote("campaign_service: lease grant shard=" +
                  std::to_string(i) + " worker=" +
                  std::to_string(worker) +
                  " epoch=" + std::to_string(rec.epoch));
        return Lease{i, worker, rec.epoch, st.leaseDeadline};
    }
    return std::nullopt;
}

namespace
{

/** Holder check shared by renew/complete/release/fail. */
bool
leaseCurrent(const ShardStatus &st, const Lease &lease)
{
    return st.state == ShardState::Leased && st.epoch == lease.epoch;
}

} // namespace

bool
DurableWorkQueue::renew(const Lease &lease, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mu);
    if (lease.shard >= statuses.size())
        return false;
    ShardStatus &st = statuses[lease.shard];
    if (!leaseCurrent(st, lease))
        return false;
    JournalRecord rec;
    rec.type = RecordType::LeaseRenewed;
    rec.shard = lease.shard;
    rec.worker = lease.worker;
    rec.epoch = lease.epoch;
    journal->append(rec);
    st.leaseDeadline = now + config.leaseDuration;
    telemetry::count(QueueMetrics::instance().renewals);
    traceNote("campaign_service: lease renew shard=" +
              std::to_string(lease.shard) +
              " epoch=" + std::to_string(lease.epoch));
    return true;
}

bool
DurableWorkQueue::complete(const Lease &lease,
                           const faultsim::CampaignResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    if (lease.shard >= statuses.size())
        return false;
    ShardStatus &st = statuses[lease.shard];
    if (!leaseCurrent(st, lease))
        return false; // stale holder: the shard moved on without us
    JournalRecord rec;
    rec.type = RecordType::ShardDone;
    rec.shard = lease.shard;
    rec.worker = lease.worker;
    rec.epoch = lease.epoch;
    rec.result = result;
    journal->append(rec);
    st.state = ShardState::Done;
    st.result = result;
    telemetry::count(QueueMetrics::instance().done);
    traceNote("campaign_service: shard done shard=" +
              std::to_string(lease.shard) + " injections=" +
              std::to_string(result.total()));
    return true;
}

bool
DurableWorkQueue::release(const Lease &lease)
{
    std::lock_guard<std::mutex> lock(mu);
    if (lease.shard >= statuses.size())
        return false;
    ShardStatus &st = statuses[lease.shard];
    if (!leaseCurrent(st, lease))
        return false;
    JournalRecord rec;
    rec.type = RecordType::LeaseReleased;
    rec.shard = lease.shard;
    rec.worker = lease.worker;
    rec.epoch = lease.epoch;
    journal->append(rec);
    st.state = ShardState::Pending;
    traceNote("campaign_service: lease release shard=" +
              std::to_string(lease.shard) +
              " epoch=" + std::to_string(lease.epoch));
    return true;
}

bool
DurableWorkQueue::fail(const Lease &lease, ErrorKind cause,
                       const std::string &message, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mu);
    if (lease.shard >= statuses.size())
        return false;
    ShardStatus &st = statuses[lease.shard];
    if (!leaseCurrent(st, lease))
        return false;
    st.failures += 1;
    const auto &metrics = QueueMetrics::instance();
    JournalRecord rec;
    rec.shard = lease.shard;
    rec.worker = lease.worker;
    rec.epoch = lease.epoch;
    rec.cause = cause;
    rec.message = message;
    if (st.failures >= config.maxAttempts) {
        rec.type = RecordType::ShardQuarantined;
        journal->append(rec);
        st.state = ShardState::Quarantined;
        st.cause = cause;
        st.causeMessage = message;
        telemetry::count(metrics.quarantines);
        traceNote("campaign_service: quarantine shard=" +
                  std::to_string(lease.shard) + " cause=" +
                  errorKindName(cause) + " after " +
                  std::to_string(st.failures) + " failures");
    } else {
        rec.type = RecordType::ShardFailed;
        journal->append(rec);
        st.state = ShardState::Pending;
        const double delayMs = backoffDelayMs(
            config, shardList[lease.shard].seed, st.failures);
        st.notBefore =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          delayMs));
        telemetry::count(metrics.retries);
        traceNote("campaign_service: shard retry shard=" +
                  std::to_string(lease.shard) + " failure=" +
                  std::to_string(st.failures) + " cause=" +
                  errorKindName(cause) + " backoff_ms=" +
                  std::to_string(delayMs));
    }
    return true;
}

unsigned
DurableWorkQueue::expireStale(Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mu);
    unsigned expired = 0;
    for (std::uint32_t i = 0; i < statuses.size(); ++i) {
        ShardStatus &st = statuses[i];
        if (st.state != ShardState::Leased || now < st.leaseDeadline)
            continue;
        JournalRecord rec;
        rec.type = RecordType::LeaseReleased;
        rec.shard = i;
        rec.worker = st.worker;
        rec.epoch = st.epoch;
        journal->append(rec);
        st.state = ShardState::Pending;
        ++expired;
        telemetry::count(QueueMetrics::instance().expiries);
        traceNote("campaign_service: lease expire shard=" +
                  std::to_string(i) + " worker=" +
                  std::to_string(st.worker) +
                  " epoch=" + std::to_string(st.epoch));
    }
    return expired;
}

bool
DurableWorkQueue::allResolved() const
{
    std::lock_guard<std::mutex> lock(mu);
    return std::all_of(statuses.begin(), statuses.end(),
                       [](const ShardStatus &st) {
                           return st.state == ShardState::Done ||
                                  st.state == ShardState::Quarantined;
                       });
}

unsigned
DurableWorkQueue::doneCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(
        std::count_if(statuses.begin(), statuses.end(),
                      [](const ShardStatus &st) {
                          return st.state == ShardState::Done;
                      }));
}

unsigned
DurableWorkQueue::quarantinedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(
        std::count_if(statuses.begin(), statuses.end(),
                      [](const ShardStatus &st) {
                          return st.state == ShardState::Quarantined;
                      }));
}

unsigned
DurableWorkQueue::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(
        std::count_if(statuses.begin(), statuses.end(),
                      [](const ShardStatus &st) {
                          return st.state == ShardState::Pending;
                      }));
}

unsigned
DurableWorkQueue::leasedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<unsigned>(
        std::count_if(statuses.begin(), statuses.end(),
                      [](const ShardStatus &st) {
                          return st.state == ShardState::Leased;
                      }));
}

ShardStatus
DurableWorkQueue::status(std::uint32_t shard) const
{
    std::lock_guard<std::mutex> lock(mu);
    if (shard >= statuses.size())
        throw Error::internal("campaign: shard id out of range");
    return statuses[shard];
}

double
DurableWorkQueue::backoffDelayMs(const QueueConfig &config,
                                 std::uint64_t shard_seed,
                                 unsigned failures)
{
    if (failures == 0)
        return 0.0;
    // Clamp the exponent: past ~2^40 the cap dominates anyway and an
    // unclamped ldexp would overflow to inf.
    const int exponent =
        static_cast<int>(std::min(failures - 1, 40u));
    const double raw =
        config.backoffBaseMs * std::ldexp(1.0, exponent);
    const double capped = std::min(config.backoffCapMs, raw);
    Fnv1a h;
    h.addWord(shard_seed);
    h.addWord(failures);
    Rng rng(h.value());
    const double jitter =
        1.0 + config.backoffJitterFrac * (2.0 * rng.uniform() - 1.0);
    return capped * jitter;
}

void
DurableWorkQueue::sync()
{
    std::lock_guard<std::mutex> lock(mu);
    journal->sync();
}

} // namespace harpo::campaign
