#include "museqgen/museqgen.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::museqgen
{

using isa::Inst;
using isa::InstrDesc;
using isa::Op;
using isa::Operand;
using isa::OperandKind;

namespace
{

/** Registers usable as generic data operands: everything except the
 *  stack pointer and the reserved memory base registers. */
constexpr std::uint8_t dataRegs[] = {
    isa::RAX, isa::RCX, isa::RDX, isa::RBX, isa::RBP,
    isa::R8, isa::R9, isa::R10, isa::R11, isa::R12,
    isa::R13, isa::R14, isa::R15,
};
constexpr unsigned numDataRegs = sizeof(dataRegs);

/**
 * A random double with a near-unity exponent (2^-32 .. 2^32).
 *
 * Keeping generated FP data in this band is essential for fault
 * detection quality: chains of multiplications over wide-exponent
 * data saturate to Inf/0 within a few operations, and once operands
 * are special values most mantissa-datapath faults are architecturally
 * masked (the special-case path bypasses the significand logic). The
 * paper attributes its FP results to "careful parameterization of our
 * generator" — this is that parameter.
 */
std::uint64_t
randomDoubleBits(Rng &rng)
{
    const std::uint64_t sign = rng.next() & 0x8000000000000000ull;
    if (rng.chance(0.4)) {
        // Sparse mantissa (an exact small-integer-valued double).
        // Dense random mantissas keep the FP multiplier's sticky OR
        // tree permanently saturated, which architecturally masks
        // faults in the low half of the significand array; sparse
        // operands make those gates observable through rounding.
        const std::uint64_t exp = (1023 + rng.below(20)) << 52;
        const std::uint64_t frac = (1ull << rng.below(52)) |
                                   (1ull << rng.below(52));
        return sign | exp | (frac & 0xFFFFFFFFFFFFFull);
    }
    const std::uint64_t exp = (991 + rng.below(65)) << 52;
    return sign | exp | (rng.next() & 0xFFFFFFFFFFFFFull);
}

/** Sequential register-allocation state for one synthesis run. */
struct RegAllocState
{
    std::array<std::uint64_t, numDataRegs> lastTouchGpr{};
    std::array<std::uint64_t, 16> lastTouchXmm{};
    unsigned rrGpr = 0;
    unsigned rrXmm = 0;

    std::uint8_t
    pickGpr(RegAllocPolicy policy, bool is_dest, Rng &rng,
            std::uint64_t position)
    {
        unsigned idx = 0;
        switch (policy) {
          case RegAllocPolicy::MaxDependencyDistance:
            if (is_dest) {
                // Concentrate overwrites on a small rotating window of
                // registers: values outside the window live (and stay
                // readable) for long stretches, maximizing the
                // producer-to-consumer and write-to-overwrite
                // distances the paper's allocation policy targets.
                constexpr unsigned destWindow = 4;
                idx = rrGpr++ % destWindow;
                // Rotate the window slowly across the file so every
                // register both parks and churns over the program.
                idx = (idx + static_cast<unsigned>(position / 256)) %
                      numDataRegs;
            } else {
                idx = static_cast<unsigned>(rng.below(numDataRegs));
            }
            break;
          case RegAllocPolicy::RoundRobin:
            idx = rrGpr++ % numDataRegs;
            break;
          case RegAllocPolicy::Random:
            idx = static_cast<unsigned>(rng.below(numDataRegs));
            break;
        }
        lastTouchGpr[idx] = position + 1;
        return dataRegs[idx];
    }

    std::uint8_t
    pickXmm(RegAllocPolicy policy, bool is_dest, Rng &rng,
            std::uint64_t position)
    {
        unsigned idx = 0;
        switch (policy) {
          case RegAllocPolicy::MaxDependencyDistance:
            if (is_dest) {
                for (unsigned i = 1; i < 16; ++i) {
                    if (lastTouchXmm[i] < lastTouchXmm[idx])
                        idx = i;
                }
            } else {
                idx = static_cast<unsigned>(rng.below(16));
            }
            break;
          case RegAllocPolicy::RoundRobin:
            idx = rrXmm++ % 16;
            break;
          case RegAllocPolicy::Random:
            idx = static_cast<unsigned>(rng.below(16));
            break;
        }
        lastTouchXmm[idx] = position + 1;
        return static_cast<std::uint8_t>(idx);
    }
};

} // namespace

std::vector<std::uint16_t>
defaultPool(bool allow_branches)
{
    return isa::isaTable().select([&](const InstrDesc &d) {
        if (!d.deterministic)
            return false; // RDTSC / RDRAND
        if (d.opClass == isa::OpClass::IntDiv)
            return false; // divide faults on random operand values
        if (d.isBranch)
            return allow_branches;
        return true;
    });
}

MuSeqGen::MuSeqGen(GenConfig config) : cfg(std::move(config))
{
    effPool =
        cfg.pool.empty() ? defaultPool(cfg.allowBranches) : cfg.pool;
    panicIf(effPool.empty(), "MuSeqGen: empty instruction pool");
    if (!cfg.poolWeights.empty()) {
        panicIf(cfg.poolWeights.size() != effPool.size(),
                "MuSeqGen: poolWeights size mismatch");
        double acc = 0.0;
        for (double w : cfg.poolWeights) {
            panicIf(w < 0.0, "MuSeqGen: negative pool weight");
            acc += w;
            cumWeights.push_back(acc);
        }
        panicIf(acc <= 0.0, "MuSeqGen: all pool weights are zero");
    }
}

std::uint16_t
MuSeqGen::samplePool(Rng &rng) const
{
    if (cumWeights.empty())
        return effPool[rng.below(effPool.size())];
    const double draw = rng.uniform() * cumWeights.back();
    const auto it =
        std::upper_bound(cumWeights.begin(), cumWeights.end(), draw);
    const std::size_t idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumWeights.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     effPool.size() - 1)));
    return effPool[idx];
}

Genome
MuSeqGen::randomGenome(Rng &rng) const
{
    Genome g;
    g.seq.reserve(cfg.numInstructions);
    for (unsigned i = 0; i < cfg.numInstructions; ++i)
        g.seq.push_back(samplePool(rng));
    g.operandSeed = rng.next();
    return g;
}

Genome
MuSeqGen::mutate(const Genome &parent, Rng &rng) const
{
    Genome child = parent;
    if (child.seq.empty())
        return child;
    // Uniform instruction replacement: all occurrences of one variant
    // present in the sequence are replaced by one uniformly drawn
    // variant (same-mnemonic different-operand forms are distinct).
    const std::uint16_t victim =
        child.seq[rng.below(child.seq.size())];
    const std::uint16_t replacement = samplePool(rng);
    for (auto &id : child.seq) {
        if (id == victim)
            id = replacement;
    }
    return child;
}

Genome
MuSeqGen::crossover(const Genome &a, const Genome &b, unsigned k,
                    Rng &rng) const
{
    Genome child;
    const std::size_t n = std::min(a.seq.size(), b.seq.size());
    child.seq.resize(n);
    child.operandSeed = rng.chance(0.5) ? a.operandSeed : b.operandSeed;

    // k cut points split [0, n) into alternating segments.
    std::vector<std::size_t> cuts;
    for (unsigned i = 0; i < k; ++i)
        cuts.push_back(rng.below(n + 1));
    std::sort(cuts.begin(), cuts.end());
    cuts.push_back(n);

    bool useA = true;
    std::size_t pos = 0;
    for (std::size_t cut : cuts) {
        for (; pos < cut; ++pos)
            child.seq[pos] = useA ? a.seq[pos] : b.seq[pos];
        useA = !useA;
    }
    return child;
}

Genome
MuSeqGen::mutateTargeted(const Genome &parent,
                         const std::vector<std::uint16_t> &preferred,
                         double bias, Rng &rng) const
{
    Genome child = parent;
    if (child.seq.empty() || preferred.empty())
        return mutate(parent, rng);
    const std::uint16_t victim =
        child.seq[rng.below(child.seq.size())];
    const std::uint16_t replacement =
        rng.chance(bias) ? preferred[rng.below(preferred.size())]
                         : samplePool(rng);
    for (auto &id : child.seq) {
        if (id == victim)
            id = replacement;
    }
    return child;
}

Genome
MuSeqGen::mutateOperands(const Genome &parent, Rng &rng) const
{
    Genome child = parent;
    child.operandSeed = rng.next();
    return child;
}

Genome
MuSeqGen::mutateWith(MutationOp op, const Genome &parent,
                     const Genome &donor,
                     const std::vector<std::uint16_t> &preferred,
                     Rng &rng, double targeted_bias) const
{
    switch (op) {
      case MutationOp::UniformReplace:
        return mutate(parent, rng);
      case MutationOp::TargetedReplace:
        return mutateTargeted(parent, preferred, targeted_bias, rng);
      case MutationOp::OperandPerturb:
        return mutateOperands(parent, rng);
      case MutationOp::BlockSplice:
        return crossover(parent, donor, 2, rng);
    }
    panic("mutateWith: invalid MutationOp");
}

const char *
mutationOpName(MutationOp op)
{
    switch (op) {
      case MutationOp::UniformReplace:
        return "uniform-replace";
      case MutationOp::TargetedReplace:
        return "targeted-replace";
      case MutationOp::OperandPerturb:
        return "operand-perturb";
      case MutationOp::BlockSplice:
        return "block-splice";
    }
    panic("mutationOpName: invalid MutationOp");
}

isa::TestProgram
MuSeqGen::synthesize(const Genome &genome, const std::string &name) const
{
    Rng rng(genome.operandSeed);
    RegAllocState regs;

    isa::TestProgram program;
    program.name = name.empty() ? cfg.namePrefix : name;

    const std::uint32_t usable =
        cfg.memory.regionSize > 32 ? cfg.memory.regionSize - 16 : 16;
    std::int64_t stackDelta = 0; // pushes minus pops, in qwords
    unsigned memIndex = 0;

    // ---- Pass: instruction selection is the genome itself; resolve
    // operands (registers, memory, immediates) and branches. ----
    for (std::size_t i = 0; i < genome.seq.size(); ++i) {
        const InstrDesc &desc = isa::isaTable().desc(genome.seq[i]);
        Inst inst;
        inst.descId = desc.id;

        for (int k = 0; k < desc.numOperands; ++k) {
            const auto &spec = desc.operands[k];
            Operand &op = inst.ops[k];
            op.kind = spec.kind;
            switch (spec.kind) {
              case OperandKind::Gpr:
                op.reg = regs.pickGpr(cfg.regAlloc, spec.isWrite, rng,
                                      i);
                break;
              case OperandKind::Xmm:
                op.reg = regs.pickXmm(cfg.regAlloc, spec.isWrite, rng,
                                      i);
                break;
              case OperandKind::Imm: {
                // Immediate resolution: uniform over the whole range.
                const unsigned bits = spec.width * 8;
                std::int64_t v = static_cast<std::int64_t>(rng.next());
                if (bits < 64)
                    v = (v << (64 - bits)) >> (64 - bits);
                op.imm = v;
                break;
              }
              case OperandKind::Mem: {
                // Memory operand resolution: base register + strided
                // round-robin (or random) offset within the region,
                // aligned to the access width.
                op.mem.base = isa::RSI;
                std::uint32_t offset;
                if (cfg.memory.roundRobin) {
                    offset = static_cast<std::uint32_t>(
                        (static_cast<std::uint64_t>(memIndex) *
                         cfg.memory.stride) %
                        usable);
                } else {
                    offset =
                        static_cast<std::uint32_t>(rng.below(usable));
                }
                const std::uint32_t align =
                    spec.width ? spec.width : 8;
                offset &= ~(align - 1);
                op.mem.disp = static_cast<std::int32_t>(offset);
                ++memIndex;
                break;
              }
              default:
                break;
            }
        }

        // Branch resolution: taken and not-taken paths coincide.
        if (desc.isBranch) {
            inst.branchTarget = static_cast<std::int32_t>(i + 1);
            inst.ops[0].imm = 0;
        }

        if (desc.op == Op::Push)
            ++stackDelta;
        else if (desc.op == Op::Pop)
            --stackDelta;

        program.code.push_back(inst);
    }

    program.coreBegin = 0;
    program.coreEnd = program.code.size();

    // ---- Wrapper pass: stack re-alignment epilogue. ----
    if (stackDelta != 0) {
        const InstrDesc *add = isa::isaTable().byMnemonic(
            "add r64, imm32");
        Inst fix;
        fix.descId = add->id;
        fix.ops[0].kind = OperandKind::Gpr;
        fix.ops[0].reg = isa::RSP;
        fix.ops[1].kind = OperandKind::Imm;
        fix.ops[1].imm = stackDelta * 8;
        program.code.push_back(fix);
    }

    // ---- Wrapper pass: regions, stack, initial state. ----
    program.regions.push_back(
        {cfg.memory.regionBase, cfg.memory.regionSize});
    const std::uint64_t stackBase = cfg.memory.regionBase + 0x200000;
    program.regions.push_back({stackBase, cfg.stackSize});

    for (std::uint8_t r : dataRegs)
        program.initGpr[r] = rng.next();
    program.initGpr[isa::RSI] = cfg.memory.regionBase;
    program.initGpr[isa::RDI] =
        cfg.memory.regionBase + cfg.memory.regionSize / 2;
    // RSP starts mid-stack and 16-byte aligned, so mutated push/pop
    // imbalances wander within the stack region instead of faulting.
    program.initGpr[isa::RSP] =
        (stackBase + cfg.stackSize / 2) & ~0xFull;

    for (int r = 0; r < 16; ++r)
        program.initXmm[r] = {randomDoubleBits(rng),
                              randomDoubleBits(rng)};

    // The data region is filled with qwords that are simultaneously
    // plausible integers and valid near-unity doubles, so both the
    // integer and the FP datapaths see well-conditioned operands.
    std::vector<std::uint8_t> init(cfg.memory.regionSize);
    for (std::size_t pos = 0; pos + 8 <= init.size(); pos += 8) {
        const std::uint64_t qword = randomDoubleBits(rng);
        std::memcpy(&init[pos], &qword, 8);
    }
    program.memInit.push_back({cfg.memory.regionBase, std::move(init)});

    return program;
}

isa::TestProgram
MuSeqGen::generate(Rng &rng) const
{
    const Genome genome = randomGenome(rng);
    return synthesize(genome);
}

} // namespace harpo::museqgen
