/**
 * @file
 * MuSeqGen: the Mutator and Sequence Generator (paper section V).
 *
 * A program's *genome* is its instruction-variant sequence plus an
 * operand seed. Synthesis lowers a genome to a runnable TestProgram
 * through a pipeline of compiler-like passes (the MicroProbe model):
 * structure, instruction selection, register allocation, memory
 * operand resolution, immediate resolution, branch resolution, and a
 * wrapper pass (register/memory initialisation, stack setup, stack
 * re-alignment epilogue).
 *
 * Validity guarantees (paper V-B): base registers are never implicit
 * destinations (the MUL-corrupts-the-address-base problem), stack
 * pointers start mid-region so mutated push/pop imbalances cannot
 * escape the stack region, divide instructions are excluded from the
 * default pool (quotient faults), non-deterministic instructions are
 * excluded always, and branches resolve to the next instruction so
 * taken and not-taken paths coincide.
 *
 * Operand resolution is deterministic in the genome's operand seed:
 * synthesizing the same genome always yields the same program, and a
 * mutated genome keeps its parent's seed so the evolved operand
 * structure is preserved wherever the sequence is unchanged.
 */

#ifndef HARPOCRATES_MUSEQGEN_MUSEQGEN_HH
#define HARPOCRATES_MUSEQGEN_MUSEQGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/program.hh"

namespace harpo::museqgen
{

/** Register allocation strategies (paper V-D). */
enum class RegAllocPolicy : std::uint8_t
{
    MaxDependencyDistance, ///< dest = least-recently-touched register
    RoundRobin,
    Random,
};

/** Memory operand resolution strategy (paper V-D). */
struct MemoryPolicy
{
    std::uint64_t regionBase = 0x100000;
    std::uint32_t regionSize = 32 * 1024; ///< L1D-sized by default
    std::uint32_t stride = 64;
    bool roundRobin = true; ///< sequential-by-position vs random
};

/** Generator configuration. */
struct GenConfig
{
    std::string namePrefix = "museq";
    unsigned numInstructions = 1000;

    /** Allowed instruction variants; empty selects the default pool
     *  (all deterministic variants minus divides and branches). */
    std::vector<std::uint16_t> pool;

    /** Optional per-pool-entry selection weights (paper V-D:
     *  "uniform or user-defined distributions"). Empty = uniform.
     *  Must match pool size when both are given. */
    std::vector<double> poolWeights;

    RegAllocPolicy regAlloc = RegAllocPolicy::MaxDependencyDistance;
    MemoryPolicy memory{};

    /** Include branch variants (resolved to the next instruction). */
    bool allowBranches = false;

    std::uint32_t stackSize = 64 * 1024;
};

/** The evolvable representation of a test program. */
struct Genome
{
    std::vector<std::uint16_t> seq; ///< instruction variant ids
    std::uint64_t operandSeed = 0;
};

/**
 * The mutation operator taxonomy. Each operator is one way of
 * deriving a child genome from a parent (plus, for BlockSplice, a
 * donor); the adaptive scheduler (search::MutationScheduler) treats
 * them as bandit arms and credits each by realized fitness gain per
 * unit simulation cost. Values are stable — they appear in
 * checkpoints and per-generation credit tables.
 */
enum class MutationOp : std::uint8_t
{
    UniformReplace,  ///< paper V-B1: replace all occurrences of one
                     ///< variant with a uniformly drawn one
    TargetedReplace, ///< replacement biased toward a preferred set
                     ///< (the elite genome's variants, in the loop)
    OperandPerturb,  ///< re-draw the operand seed; sequence unchanged
    BlockSplice,     ///< splice donor blocks in (2-point crossover)
};

inline constexpr std::size_t numMutationOps = 4;

/** Printable operator name (credit tables, bench output). Panics on
 *  an out-of-range value. */
const char *mutationOpName(MutationOp op);

/** Generator + mutation engine + synthesis passes. */
class MuSeqGen
{
  public:
    explicit MuSeqGen(GenConfig config);

    const GenConfig &config() const { return cfg; }

    /** The effective instruction pool after default-pool expansion. */
    const std::vector<std::uint16_t> &pool() const { return effPool; }

    /** Constrained-random genome of cfg.numInstructions variants. */
    Genome randomGenome(Rng &rng) const;

    /**
     * Mutation by uniform instruction replacement (paper V-B1):
     * replace ALL occurrences of one randomly selected variant of the
     * sequence with another uniformly drawn variant.
     */
    Genome mutate(const Genome &parent, Rng &rng) const;

    /** k-point crossover of two parents (ablation alternative). */
    Genome crossover(const Genome &a, const Genome &b, unsigned k,
                     Rng &rng) const;

    /** Targeted replacement (ablation): biases the replacement toward
     *  variants driving @p preferred of the pool, narrowing search. */
    Genome mutateTargeted(const Genome &parent,
                          const std::vector<std::uint16_t> &preferred,
                          double bias, Rng &rng) const;

    /** Operand perturbation: keep the instruction sequence, re-draw
     *  the operand seed — explores register/memory/immediate
     *  resolutions (and initial data) of a proven sequence. */
    Genome mutateOperands(const Genome &parent, Rng &rng) const;

    /**
     * Per-operator dispatch for the adaptive scheduler: derive a child
     * from @p parent with operator @p op. @p donor supplies the
     * spliced blocks for BlockSplice (pass the parent itself when no
     * second elite exists — the splice degenerates to a copy);
     * @p preferred biases TargetedReplace (empty falls back to
     * uniform replacement). Draws come from @p rng only, so each
     * operator's stream consumption is a deterministic function of
     * (op, genome sizes).
     */
    Genome mutateWith(MutationOp op, const Genome &parent,
                      const Genome &donor,
                      const std::vector<std::uint16_t> &preferred,
                      Rng &rng, double targeted_bias = 0.85) const;

    /** Lower a genome to a runnable program (the pass pipeline). */
    isa::TestProgram synthesize(const Genome &genome,
                                const std::string &name = "") const;

    /** Convenience: random genome + synthesis. */
    isa::TestProgram generate(Rng &rng) const;

  private:
    std::uint16_t samplePool(Rng &rng) const;

    GenConfig cfg;
    std::vector<std::uint16_t> effPool;
    std::vector<double> cumWeights; ///< empty = uniform selection
};

/** The default pool: every deterministic, non-branching, non-dividing
 *  instruction variant of the ISA. */
std::vector<std::uint16_t> defaultPool(bool allow_branches);

} // namespace harpo::museqgen

#endif // HARPOCRATES_MUSEQGEN_MUSEQGEN_HH
