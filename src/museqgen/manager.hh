/**
 * @file
 * The MuSeqGen Manager (paper V-B2, Fig. 9): scripted orchestration of
 * the most common generation/mutation flows. The paper's example —
 * "generate 10 random programs, randomly mutate the instruction
 * sequence of each generated program 5 times, generate programs from
 * the 25 total mutated sequences" — is the randomThenMutate() flow;
 * the Harpocrates loop (src/core) composes these flows with the
 * hardware Evaluator.
 */

#ifndef HARPOCRATES_MUSEQGEN_MANAGER_HH
#define HARPOCRATES_MUSEQGEN_MANAGER_HH

#include <vector>

#include "common/rng.hh"
#include "museqgen/museqgen.hh"

namespace harpo::museqgen
{

/** Scripted generation/mutation flows over one generator instance. */
class Manager
{
  public:
    Manager(GenConfig config, std::uint64_t seed)
        : gen(std::move(config)), rng(seed)
    {}

    const MuSeqGen &generator() const { return gen; }

    /** Flow: @p count constrained-random genomes. */
    std::vector<Genome> generateBatch(unsigned count);

    /** Flow: each input genome mutated @p times times (its mutants are
     *  appended after the originals, preserving order). */
    std::vector<Genome> mutateEach(const std::vector<Genome> &parents,
                                   unsigned times);

    /** Flow: k-point crossover of every adjacent pair. */
    std::vector<Genome>
    crossoverPairs(const std::vector<Genome> &parents, unsigned k);

    /** Lower a batch of genomes to runnable programs. */
    std::vector<isa::TestProgram>
    synthesizeAll(const std::vector<Genome> &genomes,
                  const std::string &name_prefix = "managed");

    /** The paper's composed example flow: generate @p base random
     *  programs, mutate each @p mutations_each times, and synthesize
     *  the full offspring set. */
    std::vector<isa::TestProgram>
    randomThenMutate(unsigned base, unsigned mutations_each);

  private:
    MuSeqGen gen;
    Rng rng;
};

} // namespace harpo::museqgen

#endif // HARPOCRATES_MUSEQGEN_MANAGER_HH
