#include "museqgen/manager.hh"

namespace harpo::museqgen
{

std::vector<Genome>
Manager::generateBatch(unsigned count)
{
    std::vector<Genome> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        out.push_back(gen.randomGenome(rng));
    return out;
}

std::vector<Genome>
Manager::mutateEach(const std::vector<Genome> &parents, unsigned times)
{
    std::vector<Genome> out = parents;
    out.reserve(parents.size() * (1 + times));
    for (const Genome &parent : parents) {
        for (unsigned m = 0; m < times; ++m)
            out.push_back(gen.mutate(parent, rng));
    }
    return out;
}

std::vector<Genome>
Manager::crossoverPairs(const std::vector<Genome> &parents, unsigned k)
{
    std::vector<Genome> out;
    for (std::size_t i = 0; i + 1 < parents.size(); i += 2)
        out.push_back(gen.crossover(parents[i], parents[i + 1], k, rng));
    return out;
}

std::vector<isa::TestProgram>
Manager::synthesizeAll(const std::vector<Genome> &genomes,
                       const std::string &name_prefix)
{
    std::vector<isa::TestProgram> out;
    out.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i)
        out.push_back(gen.synthesize(
            genomes[i], name_prefix + "-" + std::to_string(i)));
    return out;
}

std::vector<isa::TestProgram>
Manager::randomThenMutate(unsigned base, unsigned mutations_each)
{
    const std::vector<Genome> parents = generateBatch(base);
    const std::vector<Genome> all = mutateEach(parents, mutations_each);
    return synthesizeAll(all);
}

} // namespace harpo::museqgen
