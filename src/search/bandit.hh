/**
 * @file
 * MutationScheduler: a sliding-window UCB1 multi-armed bandit over
 * mutation operators, in the spirit of HiFuzz's hierarchical adaptive
 * operator scheduling (PAPERS.md).
 *
 * Each arm is one museqgen::MutationOp. After a mutant produced by
 * arm a is graded, the loop credits the arm with the realized fitness
 * gain over its parent and the simulation cost that grading paid
 * (simulated cycles — a deterministic, machine-independent cost
 * unit). The scheduler converts each credit into a reward
 *
 *     r = clamp01(gain * costScale / max(cost, 1))
 *
 * i.e. coverage gained per simulated cycle, and ranks arms by UCB1
 * over a sliding window of the last `window` credits. The window is
 * what lets the policy track drift: an operator that was valuable
 * early (e.g. splicing while the population is diverse) and useless
 * late slides out of the statistics instead of coasting on stale
 * credit. Two starvation guards keep every arm alive:
 *
 *   - an epsilon floor: with probability numArms * epsilonFloor a
 *     pull is uniformly random, so every arm keeps at least an
 *     epsilonFloor share of pulls in expectation no matter how bad
 *     its window looks;
 *   - the UCB1 cold-start rule: an arm with no pulls inside the
 *     current window has unbounded uncertainty and is played first.
 *
 * Determinism: selection consumes draws only from the caller's Rng
 * (one uniform, plus one bounded draw on the epsilon branch), and all
 * statistics are pure functions of the credit sequence. State is
 * fully exportable/restorable (BanditState) so checkpointed runs
 * resume learning bit-identically.
 */

#ifndef HARPOCRATES_SEARCH_BANDIT_HH
#define HARPOCRATES_SEARCH_BANDIT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace harpo::search
{

/** Scheduler parameters. The defaults are the tuned loop settings;
 *  the statistical tests pin convergence under them. */
struct BanditConfig
{
    /** Number of arms (mutation operators). Must be non-zero. */
    unsigned arms = 0;

    /** Sliding-window length, in credits. Shorter adapts faster to
     *  drifting operator value; longer estimates tighter. */
    unsigned window = 192;

    /** UCB1 exploration coefficient (sqrt(2) is the textbook value;
     *  rewards here are normalised into [0, 1] first). */
    double exploration = 1.4142135623730951;

    /** Per-arm uniform-exploration floor: each select() is uniformly
     *  random with probability arms * epsilonFloor, so every arm
     *  receives at least an epsilonFloor share of pulls in
     *  expectation. arms * epsilonFloor must be <= 1. */
    double epsilonFloor = 0.04;

    /** Gain-per-cost scale: a credit of `gain` fitness at `cost`
     *  simulated cycles becomes reward gain * costScale / cost. The
     *  default makes "0.1 coverage per megacycle" saturate. */
    double costScale = 1e7;
};

/** Exportable scheduler state (checkpoint format v3). */
struct BanditState
{
    /** Window contents, oldest first (parallel arrays). */
    std::vector<std::uint8_t> windowArm;
    std::vector<double> windowReward;

    /** Lifetime per-arm totals (credit tables / telemetry; not used
     *  by the selection policy, which sees only the window). */
    std::vector<std::uint64_t> pulls;
    std::vector<double> gain;
    std::vector<std::uint64_t> cost;
};

/** Read-only per-arm view for credit tables. */
struct ArmView
{
    std::uint64_t pulls = 0;        ///< lifetime credited pulls
    double gain = 0.0;              ///< lifetime realized fitness gain
    std::uint64_t cost = 0;         ///< lifetime simulated cycles paid
    std::uint64_t windowPulls = 0;  ///< credits inside the window
    double windowMeanReward = 0.0;  ///< mean normalised reward
};

class MutationScheduler
{
  public:
    explicit MutationScheduler(BanditConfig config);

    const BanditConfig &config() const { return cfg; }

    /**
     * Pick the arm to play next. Consumes one uniform draw from
     * @p rng, plus one bounded draw when the epsilon branch fires.
     * Ties in the UCB ranking resolve to the lowest arm index.
     */
    unsigned select(Rng &rng);

    /** Credit @p arm with @p gain realized fitness at @p cost
     *  simulated cycles. Negative gains clamp to zero (UCB1 rewards
     *  are non-negative); the oldest window entry slides out. */
    void credit(unsigned arm, double gain, std::uint64_t cost);

    ArmView arm(unsigned index) const;

    /** Total credits received (lifetime). */
    std::uint64_t totalPulls() const { return lifetimePulls; }

    /** Export / restore the complete learning state. restore()
     *  validates arm counts and window bounds against the config. */
    BanditState state() const;
    void restore(const BanditState &state);

  private:
    BanditConfig cfg;

    /** Ring buffer of the last cfg.window credits. */
    std::vector<std::uint8_t> ringArm;
    std::vector<double> ringReward;
    std::size_t ringHead = 0;  ///< next slot to overwrite
    std::size_t ringCount = 0; ///< valid entries (<= cfg.window)

    /** Incremental window sums (rebuilt on restore). */
    std::vector<std::uint64_t> winPulls;
    std::vector<double> winReward;

    std::vector<std::uint64_t> lifePulls;
    std::vector<double> lifeGain;
    std::vector<std::uint64_t> lifeCost;
    std::uint64_t lifetimePulls = 0;
};

} // namespace harpo::search

#endif // HARPOCRATES_SEARCH_BANDIT_HH
