/**
 * @file
 * SurrogateFilter: a cheap feature-based pre-ranker for candidate
 * mutants — GoldenFuzz's generative-golden-reference idea (PAPERS.md)
 * applied to *fitness* instead of reference outputs. Instead of
 * paying a full core simulation for every mutant, the loop
 * over-generates candidates, scores each with a linear model over
 * genome-derived features, and simulates only the top
 * LoopConfig::surrogateKeepFraction.
 *
 * Features are computable without synthesis or simulation:
 *
 *   - instruction-mix histogram: the fraction of the sequence in each
 *     isa::OpClass (the dominant predictor for functional-unit IBR —
 *     a unit that is never invoked cannot be covered);
 *   - operand entropy: Shannon entropy of the operand-category
 *     distribution (kind x width over every operand slot the
 *     sequence's descriptors declare) — how diversely the stream
 *     exercises register, immediate and memory operand paths;
 *   - sequence diversity: variant entropy and distinct-variant ratio;
 *   - the parent's PR 4 coverage vector (heredity: mutants of a
 *     high-coverage parent mostly stay close to it);
 *   - a bias term.
 *
 * The model self-calibrates: every graded program contributes an
 * (features, realized fitness) observation to a bounded ring, and on
 * calibration generations the loop grades a random holdout of
 * candidates (bypassing the filter) to measure ranking quality as the
 * Spearman rank correlation between surrogate scores and realized
 * fitness, then re-fits the weights by ridge least squares over the
 * ring. Until enough observations exist the filter ranks by prior
 * weights supplied by the caller (the loop: the parent's coverage of
 * the target structure), and candidates with equal scores are ordered
 * by caller-supplied random tie keys — a degenerate constant-score
 * surrogate therefore degrades to exact random keep-fraction sampling
 * rather than a systematic bias (tests/search/surrogate_test.cpp).
 *
 * Soundness: the filter decides only WHICH mutants are simulated;
 * every reported fitness/coverage number still comes from the real
 * evaluator, so it can change the search trajectory but never a
 * reported measurement (DESIGN.md §15).
 */

#ifndef HARPOCRATES_SEARCH_SURROGATE_HH
#define HARPOCRATES_SEARCH_SURROGATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "coverage/measure.hh"
#include "museqgen/museqgen.hh"

namespace harpo::search
{

/** Pre-ranker parameters (the loop copies the toggled fields out of
 *  LoopConfig). */
struct SurrogateConfig
{
    /** Fraction of generated candidates that pays full simulation.
     *  Must be in (0, 1]; 1.0 disables the over-generation. */
    double keepFraction = 0.5;

    /** Calibrate (grade a holdout, measure Spearman, refit) every
     *  this many generations. 0 disables calibration entirely. */
    unsigned calibrationEvery = 8;

    /** Random candidates graded per calibration, filter bypassed. */
    unsigned holdout = 6;

    /** Training observations kept (ring buffer). */
    unsigned historyCap = 256;

    /** Ridge regularisation of the refit. */
    double ridge = 1e-4;

    /** Observations required before the first refit replaces the
     *  prior weights. */
    unsigned minObservations = 32;
};

/** Exportable calibration state (checkpoint format v3). */
struct SurrogateState
{
    /** Fitted weights; empty while still ranking by the prior. */
    std::vector<double> weights;

    /** Observation ring, oldest first, flattened as
     *  count * (featureDim + 1) doubles: features then fitness. */
    std::vector<double> observations;

    std::uint64_t totalObservations = 0;
    double lastSpearman = -2.0; ///< < -1: never calibrated
    std::uint64_t calibrations = 0;
};

/** Dimension of the feature vector surrogateFeatures() returns. */
std::size_t surrogateFeatureDim();

/** Index of structure @p s's parent-coverage feature inside the
 *  vector — what the loop's prior weights point at (heredity: before
 *  any calibration, candidates of better-covering parents rank
 *  higher on the targeted structure(s)). */
std::size_t surrogateParentCoverageIndex(std::size_t s);

/**
 * Extract the surrogate features of @p genome whose parent's
 * all-structure coverage was @p parent_coverage. Pure and cheap: one
 * pass over the variant sequence plus ISA-table lookups — no
 * synthesis, no simulation.
 */
std::vector<double> surrogateFeatures(
    const museqgen::Genome &genome,
    const std::array<double, coverage::numTargetStructures>
        &parent_coverage);

/**
 * Spearman rank correlation of @p a against @p b (average ranks for
 * ties). Returns 0 when either input has fewer than two elements or
 * zero rank variance (a constant surrogate has no ranking quality).
 * Exact — pinned against a brute-force O(n^2) reference by
 * tests/search/surrogate_test.cpp.
 */
double spearman(const std::vector<double> &a,
                const std::vector<double> &b);

class SurrogateFilter
{
  public:
    /** @p prior_weights rank candidates until the first refit; its
     *  size must be surrogateFeatureDim(). */
    SurrogateFilter(SurrogateConfig config,
                    std::vector<double> prior_weights);

    const SurrogateConfig &config() const { return cfg; }

    /** Predicted fitness of a candidate (dot of the active weights). */
    double score(const std::vector<double> &features) const;

    /** Record one graded program's (features, realized fitness). */
    void observe(const std::vector<double> &features, double fitness);

    /** Re-fit the weights by ridge least squares over the ring.
     *  Returns false (prior/old weights kept) while fewer than
     *  minObservations observations exist. */
    bool refit();

    /** Record a calibration holdout's measured ranking quality. */
    void recordCalibration(double spearman_value);

    /** Spearman of the most recent calibration; < -1 before any. */
    double lastSpearman() const { return lastRho; }

    std::uint64_t calibrations() const { return calibrationCount; }

    /** True once refit() has replaced the prior weights. */
    bool fitted() const { return isFitted; }

    std::uint64_t totalObservations() const { return observed; }

    /** Export / restore the complete calibration state. */
    SurrogateState state() const;
    void restore(const SurrogateState &state);

  private:
    SurrogateConfig cfg;
    std::size_t dim;
    std::vector<double> prior;
    std::vector<double> weights; ///< active when isFitted
    bool isFitted = false;

    /** Flat ring of (features, fitness) rows. */
    std::vector<double> ring;
    std::size_t ringHead = 0;  ///< next row to overwrite
    std::size_t ringCount = 0; ///< valid rows

    std::uint64_t observed = 0;
    double lastRho = -2.0;
    std::uint64_t calibrationCount = 0;
};

} // namespace harpo::search

#endif // HARPOCRATES_SEARCH_SURROGATE_HH
