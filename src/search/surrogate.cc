#include "search/surrogate.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "isa/isa_table.hh"

namespace harpo::search
{

namespace
{

constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(isa::OpClass::NumClasses);

/** Operand-category buckets for the operand-entropy feature: kind
 *  (Gpr/Xmm/Imm/Mem) x a small width index (1/4/8/16 bytes). */
constexpr std::size_t kOperandBuckets = 4 * 4;

std::size_t
operandBucket(isa::OperandKind kind, std::uint8_t width)
{
    std::size_t k = 0;
    switch (kind) {
      case isa::OperandKind::Gpr: k = 0; break;
      case isa::OperandKind::Xmm: k = 1; break;
      case isa::OperandKind::Imm: k = 2; break;
      case isa::OperandKind::Mem: k = 3; break;
      case isa::OperandKind::None: return kOperandBuckets; // skip
    }
    std::size_t w = 0;
    switch (width) {
      case 1: w = 0; break;
      case 4: w = 1; break;
      case 8: w = 2; break;
      default: w = 3; break; // 16-byte and anything exotic
    }
    return k * 4 + w;
}

/** Shannon entropy of a count histogram, normalised into [0, 1] by
 *  the maximum achievable with this many non-empty buckets. */
double
normalizedEntropy(const std::vector<std::uint64_t> &counts,
                  std::uint64_t total)
{
    if (total == 0)
        return 0.0;
    double h = 0.0;
    std::size_t nonEmpty = 0;
    for (const std::uint64_t c : counts) {
        if (c == 0)
            continue;
        ++nonEmpty;
        const double p =
            static_cast<double>(c) / static_cast<double>(total);
        h -= p * std::log2(p);
    }
    if (nonEmpty <= 1)
        return 0.0;
    return h / std::log2(static_cast<double>(counts.size()));
}

/** Average-rank vector (ties share the mean of their rank block). */
std::vector<double>
averageRanks(const std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return values[a] < values[b];
                     });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        // Positions i..j (0-based) share the average 1-based rank.
        const double avg = (static_cast<double>(i) +
                            static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

} // namespace

std::size_t
surrogateFeatureDim()
{
    // class mix + operand entropy + variant entropy + distinct ratio
    // + parent coverage vector + bias
    return kNumOpClasses + 3 + coverage::numTargetStructures + 1;
}

std::size_t
surrogateParentCoverageIndex(std::size_t s)
{
    panicIf(s >= coverage::numTargetStructures,
            "surrogateParentCoverageIndex: structure out of range");
    return kNumOpClasses + 3 + s;
}

std::vector<double>
surrogateFeatures(const museqgen::Genome &genome,
                  const std::array<double,
                                   coverage::numTargetStructures>
                      &parent_coverage)
{
    const isa::IsaTable &table = isa::IsaTable::instance();
    std::vector<double> f(surrogateFeatureDim(), 0.0);

    std::vector<std::uint64_t> operandCounts(kOperandBuckets, 0);
    std::uint64_t operandTotal = 0;
    std::vector<std::uint64_t> variantCounts;
    std::vector<std::uint16_t> sortedSeq(genome.seq);
    std::sort(sortedSeq.begin(), sortedSeq.end());

    const double n =
        genome.seq.empty() ? 1.0
                           : static_cast<double>(genome.seq.size());
    for (const std::uint16_t id : genome.seq) {
        const isa::InstrDesc &desc = table.desc(id);
        f[static_cast<std::size_t>(desc.opClass)] += 1.0 / n;
        for (int k = 0; k < desc.numOperands; ++k) {
            const std::size_t bucket = operandBucket(
                desc.operands[k].kind, desc.operands[k].width);
            if (bucket < kOperandBuckets) {
                ++operandCounts[bucket];
                ++operandTotal;
            }
        }
    }

    // Variant histogram (runs of the sorted sequence).
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < sortedSeq.size();) {
        std::size_t j = i;
        while (j < sortedSeq.size() && sortedSeq[j] == sortedSeq[i])
            ++j;
        variantCounts.push_back(j - i);
        ++distinct;
        i = j;
    }

    f[kNumOpClasses] = normalizedEntropy(
        operandCounts, operandTotal); // operand entropy
    f[kNumOpClasses + 1] = normalizedEntropy(
        variantCounts,
        static_cast<std::uint64_t>(genome.seq.size()));
    f[kNumOpClasses + 2] =
        genome.seq.empty()
            ? 0.0
            : static_cast<double>(distinct) / n; // distinct ratio

    for (std::size_t s = 0; s < coverage::numTargetStructures; ++s)
        f[kNumOpClasses + 3 + s] = parent_coverage[s];
    f.back() = 1.0; // bias
    return f;
}

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    panicIf(a.size() != b.size(), "spearman: size mismatch");
    const std::size_t n = a.size();
    if (n < 2)
        return 0.0;
    const std::vector<double> ra = averageRanks(a);
    const std::vector<double> rb = averageRanks(b);

    // Pearson correlation of the rank vectors (exact under ties).
    double meanA = 0.0, meanB = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        meanA += ra[i];
        meanB += rb[i];
    }
    meanA /= static_cast<double>(n);
    meanB /= static_cast<double>(n);
    double cov = 0.0, varA = 0.0, varB = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = ra[i] - meanA;
        const double db = rb[i] - meanB;
        cov += da * db;
        varA += da * da;
        varB += db * db;
    }
    if (varA == 0.0 || varB == 0.0)
        return 0.0;
    return cov / std::sqrt(varA * varB);
}

SurrogateFilter::SurrogateFilter(SurrogateConfig config,
                                 std::vector<double> prior_weights)
    : cfg(config), dim(surrogateFeatureDim()),
      prior(std::move(prior_weights))
{
    panicIf(prior.size() != dim,
            "SurrogateFilter: prior weight dimension mismatch");
    panicIf(cfg.keepFraction <= 0.0 || cfg.keepFraction > 1.0,
            "SurrogateFilter: keepFraction must be in (0, 1]");
    panicIf(cfg.historyCap == 0, "SurrogateFilter: zero historyCap");
    panicIf(cfg.ridge < 0.0, "SurrogateFilter: negative ridge");
    ring.assign(static_cast<std::size_t>(cfg.historyCap) * (dim + 1),
                0.0);
}

double
SurrogateFilter::score(const std::vector<double> &features) const
{
    panicIf(features.size() != dim,
            "SurrogateFilter: feature dimension mismatch");
    const std::vector<double> &w = isFitted ? weights : prior;
    double s = 0.0;
    for (std::size_t i = 0; i < dim; ++i)
        s += w[i] * features[i];
    return s;
}

void
SurrogateFilter::observe(const std::vector<double> &features,
                         double fitness)
{
    panicIf(features.size() != dim,
            "SurrogateFilter: feature dimension mismatch");
    double *row = ring.data() + ringHead * (dim + 1);
    std::copy(features.begin(), features.end(), row);
    row[dim] = fitness;
    ringHead = (ringHead + 1) % cfg.historyCap;
    ringCount = std::min<std::size_t>(ringCount + 1, cfg.historyCap);
    ++observed;
}

bool
SurrogateFilter::refit()
{
    if (ringCount < cfg.minObservations || ringCount < dim / 4)
        return false;

    // Ridge least squares over the ring: (X^T X + ridge I) w = X^T y,
    // solved by Gaussian elimination with partial pivoting. The
    // system is dim x dim (~26), far below the cost of one graded
    // simulation.
    const std::size_t d = dim;
    std::vector<double> xtx(d * d, 0.0);
    std::vector<double> xty(d, 0.0);
    // Accumulate in logical oldest-first order, not raw ring order:
    // restore() re-packs the ring at a different rotation, and the
    // floating-point sums must not depend on it (bit-identical
    // resume).
    const std::size_t start =
        (ringHead + cfg.historyCap - ringCount) % cfg.historyCap;
    for (std::size_t r = 0; r < ringCount; ++r) {
        const double *row =
            ring.data() + ((start + r) % cfg.historyCap) * (d + 1);
        const double y = row[d];
        for (std::size_t i = 0; i < d; ++i) {
            xty[i] += row[i] * y;
            for (std::size_t j = i; j < d; ++j)
                xtx[i * d + j] += row[i] * row[j];
        }
    }
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            xtx[i * d + j] = xtx[j * d + i];
        xtx[i * d + i] += cfg.ridge * static_cast<double>(ringCount);
    }

    std::vector<double> w = xty;
    for (std::size_t col = 0; col < d; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < d; ++r) {
            if (std::fabs(xtx[r * d + col]) >
                std::fabs(xtx[pivot * d + col]))
                pivot = r;
        }
        if (std::fabs(xtx[pivot * d + col]) < 1e-12)
            return false; // singular despite the ridge: keep weights
        if (pivot != col) {
            for (std::size_t c = col; c < d; ++c)
                std::swap(xtx[col * d + c], xtx[pivot * d + c]);
            std::swap(w[col], w[pivot]);
        }
        const double inv = 1.0 / xtx[col * d + col];
        for (std::size_t r = col + 1; r < d; ++r) {
            const double factor = xtx[r * d + col] * inv;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < d; ++c)
                xtx[r * d + c] -= factor * xtx[col * d + c];
            w[r] -= factor * w[col];
        }
    }
    for (std::size_t col = d; col-- > 0;) {
        for (std::size_t c = col + 1; c < d; ++c)
            w[col] -= xtx[col * d + c] * w[c];
        w[col] /= xtx[col * d + col];
    }

    weights = std::move(w);
    isFitted = true;
    return true;
}

void
SurrogateFilter::recordCalibration(double spearman_value)
{
    lastRho = spearman_value;
    ++calibrationCount;
}

SurrogateState
SurrogateFilter::state() const
{
    SurrogateState s;
    if (isFitted)
        s.weights = weights;
    s.observations.reserve(ringCount * (dim + 1));
    // Oldest-first, so restore() can replay through observe().
    const std::size_t start =
        (ringHead + cfg.historyCap - ringCount) % cfg.historyCap;
    for (std::size_t r = 0; r < ringCount; ++r) {
        const std::size_t at = (start + r) % cfg.historyCap;
        const double *row = ring.data() + at * (dim + 1);
        s.observations.insert(s.observations.end(), row,
                              row + dim + 1);
    }
    s.totalObservations = observed;
    s.lastSpearman = lastRho;
    s.calibrations = calibrationCount;
    return s;
}

void
SurrogateFilter::restore(const SurrogateState &state)
{
    panicIf(!state.weights.empty() && state.weights.size() != dim,
            "SurrogateFilter: restored weight dimension mismatch");
    panicIf(state.observations.size() % (dim + 1) != 0,
            "SurrogateFilter: restored observation stride mismatch");
    const std::size_t rows = state.observations.size() / (dim + 1);
    panicIf(rows > cfg.historyCap,
            "SurrogateFilter: restored ring exceeds historyCap");

    std::fill(ring.begin(), ring.end(), 0.0);
    std::copy(state.observations.begin(), state.observations.end(),
              ring.begin());
    ringCount = rows;
    ringHead = rows % cfg.historyCap;
    isFitted = !state.weights.empty();
    weights = state.weights;
    observed = state.totalObservations;
    lastRho = state.lastSpearman;
    calibrationCount = state.calibrations;
}

} // namespace harpo::search
