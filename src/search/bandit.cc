#include "search/bandit.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace harpo::search
{

MutationScheduler::MutationScheduler(BanditConfig config)
    : cfg(config)
{
    panicIf(cfg.arms == 0, "MutationScheduler: zero arms");
    panicIf(cfg.window == 0, "MutationScheduler: zero window");
    panicIf(cfg.epsilonFloor < 0.0 ||
                cfg.epsilonFloor * cfg.arms > 1.0,
            "MutationScheduler: epsilonFloor * arms must be in [0, 1]");
    panicIf(cfg.exploration < 0.0 || cfg.costScale <= 0.0,
            "MutationScheduler: invalid exploration/costScale");
    ringArm.resize(cfg.window, 0);
    ringReward.resize(cfg.window, 0.0);
    winPulls.assign(cfg.arms, 0);
    winReward.assign(cfg.arms, 0.0);
    lifePulls.assign(cfg.arms, 0);
    lifeGain.assign(cfg.arms, 0.0);
    lifeCost.assign(cfg.arms, 0);
}

unsigned
MutationScheduler::select(Rng &rng)
{
    // Epsilon floor first: one uniform draw decides, and only the
    // exploring branch consumes a second draw. The floor also covers
    // the cold start (no credits at all yet would make every UCB term
    // identical anyway — the tie rule would pin arm 0, so the
    // explicit uniform branch below handles that case too).
    const double u = rng.uniform();
    if (u < cfg.epsilonFloor * cfg.arms || ringCount == 0)
        return static_cast<unsigned>(rng.below(cfg.arms));

    // An arm absent from the window has unbounded uncertainty: play
    // the lowest-indexed such arm (UCB1 cold-start rule; also how an
    // arm starved by drift re-enters the statistics).
    for (unsigned a = 0; a < cfg.arms; ++a) {
        if (winPulls[a] == 0)
            return a;
    }

    // Normalise windowed mean rewards into [0, 1] by the best mean so
    // the exploration term's scale is comparable across reward
    // regimes (absolute gains shrink as coverage saturates).
    double maxMean = 0.0;
    for (unsigned a = 0; a < cfg.arms; ++a) {
        maxMean = std::max(
            maxMean, winReward[a] / static_cast<double>(winPulls[a]));
    }
    if (maxMean <= 0.0)
        maxMean = 1.0;

    unsigned best = 0;
    double bestScore = -1.0;
    const double logTotal =
        std::log(static_cast<double>(ringCount));
    for (unsigned a = 0; a < cfg.arms; ++a) {
        const double n = static_cast<double>(winPulls[a]);
        const double mean = winReward[a] / n / maxMean;
        const double score =
            mean + cfg.exploration * std::sqrt(logTotal / n);
        if (score > bestScore) {
            bestScore = score;
            best = a;
        }
    }
    return best;
}

void
MutationScheduler::credit(unsigned arm, double gain,
                          std::uint64_t cost)
{
    panicIf(arm >= cfg.arms, "MutationScheduler: arm out of range");
    const double clampedGain = std::max(0.0, gain);
    const double reward = std::min(
        1.0, clampedGain * cfg.costScale /
                 static_cast<double>(std::max<std::uint64_t>(cost, 1)));

    if (ringCount == cfg.window) {
        // Evict the oldest entry from the window sums.
        const std::uint8_t oldArm = ringArm[ringHead];
        winPulls[oldArm] -= 1;
        winReward[oldArm] -= ringReward[ringHead];
    } else {
        ++ringCount;
    }
    ringArm[ringHead] = static_cast<std::uint8_t>(arm);
    ringReward[ringHead] = reward;
    ringHead = (ringHead + 1) % cfg.window;

    winPulls[arm] += 1;
    winReward[arm] += reward;
    lifePulls[arm] += 1;
    lifeGain[arm] += clampedGain;
    lifeCost[arm] += cost;
    ++lifetimePulls;
}

ArmView
MutationScheduler::arm(unsigned index) const
{
    panicIf(index >= cfg.arms, "MutationScheduler: arm out of range");
    ArmView v;
    v.pulls = lifePulls[index];
    v.gain = lifeGain[index];
    v.cost = lifeCost[index];
    v.windowPulls = winPulls[index];
    v.windowMeanReward =
        winPulls[index]
            ? winReward[index] / static_cast<double>(winPulls[index])
            : 0.0;
    return v;
}

BanditState
MutationScheduler::state() const
{
    BanditState s;
    s.windowArm.reserve(ringCount);
    s.windowReward.reserve(ringCount);
    // Unroll the ring oldest-first so the serialized form is
    // position-independent.
    const std::size_t start =
        (ringHead + cfg.window - ringCount) % cfg.window;
    for (std::size_t i = 0; i < ringCount; ++i) {
        const std::size_t at = (start + i) % cfg.window;
        s.windowArm.push_back(ringArm[at]);
        s.windowReward.push_back(ringReward[at]);
    }
    s.pulls = lifePulls;
    s.gain = lifeGain;
    s.cost = lifeCost;
    return s;
}

void
MutationScheduler::restore(const BanditState &state)
{
    panicIf(state.windowArm.size() != state.windowReward.size() ||
                state.windowArm.size() > cfg.window,
            "MutationScheduler: restored window does not fit config");
    panicIf(state.pulls.size() != cfg.arms ||
                state.gain.size() != cfg.arms ||
                state.cost.size() != cfg.arms,
            "MutationScheduler: restored arm count mismatch");
    for (const std::uint8_t arm : state.windowArm)
        panicIf(arm >= cfg.arms,
                "MutationScheduler: restored arm out of range");

    std::fill(winPulls.begin(), winPulls.end(), 0);
    std::fill(winReward.begin(), winReward.end(), 0.0);
    ringCount = state.windowArm.size();
    ringHead = ringCount % cfg.window;
    for (std::size_t i = 0; i < ringCount; ++i) {
        ringArm[i] = state.windowArm[i];
        ringReward[i] = state.windowReward[i];
        winPulls[state.windowArm[i]] += 1;
        winReward[state.windowArm[i]] += state.windowReward[i];
    }
    lifePulls = state.pulls;
    lifeGain = state.gain;
    lifeCost = state.cost;
    lifetimePulls = 0;
    for (const std::uint64_t p : lifePulls)
        lifetimePulls += p;
}

} // namespace harpo::search
