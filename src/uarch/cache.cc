#include "uarch/cache.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace harpo::uarch
{

void
L1Cache::reset(const CacheConfig &config, isa::Memory *backing)
{
    // Invalidating every line is a complete reset: bytes under invalid
    // lines are dead — a miss fill overwrites a whole line before any
    // read can observe it, and hashState() excludes them — so the data
    // array only needs (re)zeroing when its geometry changes. Recycled
    // caches (the batch evaluator reuses one core across a population)
    // skip the 32 KB memset entirely.
    const bool sameGeometry = cfg.size == config.size &&
                              cfg.lineSize == config.lineSize &&
                              lines.size() == config.numLines();
    cfg = config;
    memory = backing;
    if (sameGeometry)
        std::fill(lines.begin(), lines.end(), Line{});
    else {
        lines.assign(cfg.numLines(), Line{});
        data.assign(cfg.size, 0);
    }
    hits = 0;
    misses = 0;
}

bool
L1Cache::lookupOrFill(std::uint64_t line_addr, std::uint32_t &line_index,
                      bool &hit, std::uint64_t cycle, CoreProbe *probe,
                      Core *core)
{
    (void)core;
    const std::uint32_t numSets = cfg.numSets();
    const std::uint32_t set =
        static_cast<std::uint32_t>((line_addr / cfg.lineSize) % numSets);
    const std::uint64_t tag = line_addr / cfg.lineSize / numSets;

    // Hit check.
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        const std::uint32_t idx = set * cfg.ways + w;
        if (lines[idx].valid && lines[idx].tag == tag) {
            lines[idx].lastUse = cycle;
            line_index = idx;
            hit = true;
            ++hits;
            return true;
        }
    }

    // Miss: the fill data must be backed by a valid region.
    ++misses;
    hit = false;
    std::uint8_t fillBuf[256];
    panicIf(cfg.lineSize > sizeof(fillBuf), "line size too large");
    if (!memory->read(line_addr, cfg.lineSize, fillBuf))
        return false;

    // LRU victim within the set.
    std::uint32_t victim = set * cfg.ways;
    for (std::uint32_t w = 1; w < cfg.ways; ++w) {
        const std::uint32_t idx = set * cfg.ways + w;
        if (!lines[idx].valid) {
            victim = idx;
            break;
        }
        if (lines[idx].lastUse < lines[victim].lastUse)
            victim = idx;
    }

    Line &line = lines[victim];
    const std::uint32_t dataIndex = victim * cfg.lineSize;
    if (line.valid) {
        if (line.dirty) {
            const std::uint64_t victimAddr =
                (line.tag * numSets +
                 static_cast<std::uint64_t>(set)) *
                cfg.lineSize;
            memory->write(victimAddr, cfg.lineSize, &data[dataIndex]);
        }
        if (probe)
            probe->onCacheEvict(dataIndex, cfg.lineSize, line.dirty,
                                cycle);
    }

    std::memcpy(&data[dataIndex], fillBuf, cfg.lineSize);
    if (probe)
        probe->onCacheWrite(dataIndex, cfg.lineSize, cycle);
    line.valid = true;
    line.dirty = false;
    line.tag = tag;
    line.lastUse = cycle;
    line_index = victim;
    return true;
}

bool
L1Cache::access(std::uint64_t addr, unsigned size, std::uint8_t *buf,
                bool is_write, unsigned &latency_out, std::uint64_t cycle,
                CoreProbe *probe, Core *core)
{
    const std::uint64_t lineAddr = addr & ~std::uint64_t(cfg.lineSize - 1);
    const std::uint32_t offset =
        static_cast<std::uint32_t>(addr - lineAddr);
    std::uint32_t lineIndex = 0;
    bool hit = false;
    if (!lookupOrFill(lineAddr, lineIndex, hit, cycle, probe, core))
        return false;
    latency_out = hit ? cfg.hitLatency : cfg.missLatency;

    const std::uint32_t dataIndex = lineIndex * cfg.lineSize + offset;
    if (is_write) {
        std::memcpy(&data[dataIndex], buf, size);
        lines[lineIndex].dirty = true;
        if (probe)
            probe->onCacheWrite(dataIndex, size, cycle);
    } else {
        std::memcpy(buf, &data[dataIndex], size);
        if (probe)
            probe->onCacheRead(dataIndex, size, cycle);
    }
    return true;
}

bool
L1Cache::read(std::uint64_t addr, unsigned size, std::uint8_t *out,
              unsigned &latency_out, std::uint64_t cycle, CoreProbe *probe,
              Core *core)
{
    latency_out = 0;
    std::uint64_t pos = addr;
    unsigned remaining = size;
    std::uint8_t *buf = out;
    while (remaining > 0) {
        const std::uint64_t lineEnd =
            (pos & ~std::uint64_t(cfg.lineSize - 1)) + cfg.lineSize;
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(remaining, lineEnd - pos));
        unsigned lat = 0;
        if (!access(pos, chunk, buf, false, lat, cycle, probe, core))
            return false;
        latency_out = std::max(latency_out, lat);
        pos += chunk;
        buf += chunk;
        remaining -= chunk;
    }
    return true;
}

bool
L1Cache::write(std::uint64_t addr, unsigned size, const std::uint8_t *in,
               unsigned &latency_out, std::uint64_t cycle,
               CoreProbe *probe, Core *core)
{
    latency_out = 0;
    std::uint64_t pos = addr;
    unsigned remaining = size;
    const std::uint8_t *buf = in;
    while (remaining > 0) {
        const std::uint64_t lineEnd =
            (pos & ~std::uint64_t(cfg.lineSize - 1)) + cfg.lineSize;
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(remaining, lineEnd - pos));
        unsigned lat = 0;
        std::uint8_t tmp[64];
        std::memcpy(tmp, buf, chunk);
        if (!access(pos, chunk, tmp, true, lat, cycle, probe, core))
            return false;
        latency_out = std::max(latency_out, lat);
        pos += chunk;
        buf += chunk;
        remaining -= chunk;
    }
    return true;
}

void
L1Cache::flush(std::uint64_t cycle, CoreProbe *probe, Core *core)
{
    (void)core;
    const std::uint32_t numSets = cfg.numSets();
    for (std::uint32_t idx = 0; idx < lines.size(); ++idx) {
        Line &line = lines[idx];
        if (!line.valid)
            continue;
        const std::uint32_t set = idx / cfg.ways;
        const std::uint32_t dataIndex = idx * cfg.lineSize;
        if (line.dirty) {
            const std::uint64_t addr =
                (line.tag * numSets + set) * cfg.lineSize;
            memory->write(addr, cfg.lineSize, &data[dataIndex]);
        }
        if (probe)
            probe->onCacheEvict(dataIndex, cfg.lineSize, line.dirty,
                                cycle);
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace harpo::uarch
