/**
 * @file
 * L1 data cache model with real data storage.
 *
 * The cache's data array holds actual bytes, so transient faults
 * injected into it propagate (or are masked) exactly as in hardware:
 * a flipped bit read by a load corrupts the consumer; a flipped bit in
 * a dirty line reaches memory at write-back; a flipped bit overwritten
 * or evicted clean is masked.
 */

#ifndef HARPOCRATES_UARCH_CACHE_HH
#define HARPOCRATES_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "uarch/core_config.hh"
#include "uarch/probes.hh"

namespace harpo::uarch
{

/** Set-associative write-back, write-allocate data cache. */
class L1Cache
{
  public:
    void reset(const CacheConfig &config, isa::Memory *backing);

    /**
     * Read @p size bytes at @p addr through the cache.
     * @param latency_out Receives the access latency in cycles.
     * @return false if the address is unbacked (a crash condition).
     */
    bool read(std::uint64_t addr, unsigned size, std::uint8_t *out,
              unsigned &latency_out, std::uint64_t cycle,
              CoreProbe *probe, Core *core);

    /** Write @p size bytes; same contract as read(). */
    bool write(std::uint64_t addr, unsigned size, const std::uint8_t *in,
               unsigned &latency_out, std::uint64_t cycle,
               CoreProbe *probe, Core *core);

    /** Write back all dirty lines (end of run). */
    void flush(std::uint64_t cycle, CoreProbe *probe, Core *core);

    /** Direct access to the data array for fault injection; index is a
     *  byte offset into the full data array [0, config.size). */
    void
    flipBit(std::uint32_t data_index, unsigned bit)
    {
        data[data_index] ^= static_cast<std::uint8_t>(1u << bit);
    }

    void
    forceBit(std::uint32_t data_index, unsigned bit, bool value)
    {
        if (value)
            data[data_index] |= static_cast<std::uint8_t>(1u << bit);
        else
            data[data_index] &= static_cast<std::uint8_t>(~(1u << bit));
    }

    std::uint32_t dataSize() const { return cfg.size; }

    /** Re-point the backing memory after this object was restored by
     *  copy from a Core::Snapshot (the snapshot's pointer refers to
     *  the snapshotted core's memory, not the restoring core's). */
    void rebind(isa::Memory *backing) { memory = backing; }

    /**
     * Mix all behaviour-relevant cache state into @p hasher: per-line
     * tags/valid/dirty/LRU ordering plus the data bytes of *valid*
     * lines only. Bytes under invalid lines are dead — no future read
     * can observe them before a fill overwrites them — so excluding
     * them lets a faulty run whose flipped line was evicted converge
     * with the golden digest (the fork-injection early exit).
     */
    template <typename Hasher>
    void
    hashState(Hasher &hasher) const
    {
        for (std::size_t idx = 0; idx < lines.size(); ++idx) {
            const Line &line = lines[idx];
            hasher.addWord(static_cast<std::uint64_t>(line.valid) |
                           (static_cast<std::uint64_t>(line.dirty) << 1));
            if (!line.valid)
                continue;
            hasher.addWord(line.tag);
            hasher.addWord(line.lastUse);
            hasher.addBytes(&data[idx * cfg.lineSize], cfg.lineSize);
        }
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    /** One aligned line-or-smaller access; returns latency. */
    bool access(std::uint64_t addr, unsigned size, std::uint8_t *buf,
                bool is_write, unsigned &latency_out, std::uint64_t cycle,
                CoreProbe *probe, Core *core);

    /** Find (or fill) the line containing @p line_addr; returns the
     *  line index and whether it was a hit. */
    bool lookupOrFill(std::uint64_t line_addr, std::uint32_t &line_index,
                      bool &hit, std::uint64_t cycle, CoreProbe *probe,
                      Core *core);

    CacheConfig cfg;
    isa::Memory *memory = nullptr;
    std::vector<Line> lines;        // set-major: set * ways + way
    std::vector<std::uint8_t> data; // line-index * lineSize + offset
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_CACHE_HH
