/**
 * @file
 * A small bimodal (2-bit saturating counter) branch direction
 * predictor. Branch targets are static in HX86, so no BTB is needed.
 */

#ifndef HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH
#define HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace harpo::uarch
{

/** Bimodal predictor indexed by instruction index. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(std::size_t table_size = 4096)
        : counters(table_size, 2) // weakly taken
    {}

    void
    reset()
    {
        counters.assign(counters.size(), 2);
    }

    bool
    predict(std::uint64_t pc) const
    {
        return counters[pc % counters.size()] >= 2;
    }

    void
    update(std::uint64_t pc, bool taken)
    {
        std::uint8_t &c = counters[pc % counters.size()];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    /** Mix the full counter table into @p hasher (state digests). */
    template <typename Hasher>
    void
    hashInto(Hasher &hasher) const
    {
        hasher.addBytes(counters.data(), counters.size());
    }

  private:
    std::vector<std::uint8_t> counters;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH
