/**
 * @file
 * A small bimodal (2-bit saturating counter) branch direction
 * predictor. Branch targets are static in HX86, so no BTB is needed.
 */

#ifndef HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH
#define HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace harpo::uarch
{

/** Bimodal predictor indexed by instruction index. */
class BranchPredictor
{
  public:
    /** Counter-table size used by every default-constructed core
     *  (the branch-predictor fault target's site count). */
    static constexpr std::size_t defaultTableSize = 4096;

    explicit BranchPredictor(std::size_t table_size = defaultTableSize)
        : counters(table_size, 2) // weakly taken
    {}

    std::size_t size() const { return counters.size(); }

    void
    reset()
    {
        counters.assign(counters.size(), 2);
    }

    bool
    predict(std::uint64_t pc) const
    {
        return counters[pc % counters.size()] >= 2;
    }

    void
    update(std::uint64_t pc, bool taken)
    {
        std::uint8_t &c = counters[pc % counters.size()];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    /** Flip one bit of a 2-bit counter (transient fault injection).
     *  Counters are 2 bits wide, so flipping bit 0 or 1 keeps the
     *  value in [0, 3] by construction. Returns false when @p slot is
     *  out of range (no such fault site). */
    bool
    flipBit(std::size_t slot, unsigned bit)
    {
        if (slot >= counters.size() || bit >= 2)
            return false;
        counters[slot] ^= static_cast<std::uint8_t>(1u << bit);
        return true;
    }

    /** Force one counter bit (permanent / intermittent stuck-at). */
    bool
    forceBit(std::size_t slot, unsigned bit, bool value)
    {
        if (slot >= counters.size() || bit >= 2)
            return false;
        if (value)
            counters[slot] |= static_cast<std::uint8_t>(1u << bit);
        else
            counters[slot] &= static_cast<std::uint8_t>(~(1u << bit));
        return true;
    }

    /** Mix the full counter table into @p hasher (state digests). */
    template <typename Hasher>
    void
    hashInto(Hasher &hasher) const
    {
        hasher.addBytes(counters.data(), counters.size());
    }

  private:
    std::vector<std::uint8_t> counters;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_BRANCH_PREDICTOR_HH
