/**
 * @file
 * Configuration of the modelled out-of-order core. Defaults follow
 * publicly available parameters of commercial x86 cores (as the paper
 * does for its gem5 configuration).
 */

#ifndef HARPOCRATES_UARCH_CORE_CONFIG_HH
#define HARPOCRATES_UARCH_CORE_CONFIG_HH

#include <cstdint>

#include "common/hash.hh"
#include "resilience/budget.hh"

namespace harpo::uarch
{

/** L1 data cache geometry and timing. */
struct CacheConfig
{
    std::uint32_t size = 32 * 1024;
    std::uint32_t lineSize = 64;
    std::uint32_t ways = 8;
    std::uint32_t hitLatency = 3;
    std::uint32_t missLatency = 20;

    std::uint32_t numSets() const { return size / (lineSize * ways); }
    std::uint32_t numLines() const { return size / lineSize; }
};

/** Out-of-order core parameters. */
struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned issueWidth = 6;
    unsigned commitWidth = 4;
    unsigned frontendDelay = 3;     ///< fetch-to-rename stages

    unsigned robSize = 192;
    unsigned iqSize = 60;
    unsigned lqSize = 32;
    unsigned sqSize = 24;

    unsigned numIntPhysRegs = 128;  ///< the paper's IRF fault target
    unsigned numFpPhysRegs = 96;

    unsigned numIntAlu = 2;
    unsigned numIntMul = 1;
    unsigned numIntDiv = 1;
    unsigned numFpAdd = 1;
    unsigned numFpMul = 1;
    unsigned numFpDiv = 1;
    unsigned numSimdAlu = 2;
    unsigned numMemPorts = 2;

    unsigned branchMispredictPenalty = 8;

    CacheConfig l1d{};

    /** Watchdog: a run exceeding this cycle count is declared hung. */
    std::uint64_t maxCycles = 20'000'000;

    /** Compute SimResult::signature at run end. The signature hashes
     *  the whole architectural state including every memory byte, which
     *  dominates short runs; callers that only consume coverage and
     *  exit status (generation grading) disable it and read signature
     *  as 0. Fault campaigns compare golden vs faulty signatures and
     *  must leave this on. */
    bool runSignature = true;

    /** Optional cooperative run budget (not owned). The cycle loop
     *  polls it every budgetPollCycles cycles and exits with
     *  SimResult::Exit::Cancelled once it expires, so a wall-clock
     *  deadline or CancelToken can interrupt a simulation mid-run. */
    const RunBudget *budget = nullptr;
    std::uint64_t budgetPollCycles = 4096;
};

/**
 * Fingerprint of every CoreConfig field that can change simulated
 * behaviour — everything except the non-owning budget pointer and its
 * poll interval, which only decide *whether* a run is interrupted, not
 * what any completed run computes. Keys the golden-run cache, the
 * batch evaluator's result cache, and CoreArena slot matching.
 */
inline std::uint64_t
behaviorFingerprint(const CoreConfig &c)
{
    Fnv1a h;
    for (const std::uint64_t v : {
             static_cast<std::uint64_t>(c.fetchWidth),
             static_cast<std::uint64_t>(c.renameWidth),
             static_cast<std::uint64_t>(c.issueWidth),
             static_cast<std::uint64_t>(c.commitWidth),
             static_cast<std::uint64_t>(c.frontendDelay),
             static_cast<std::uint64_t>(c.robSize),
             static_cast<std::uint64_t>(c.iqSize),
             static_cast<std::uint64_t>(c.lqSize),
             static_cast<std::uint64_t>(c.sqSize),
             static_cast<std::uint64_t>(c.numIntPhysRegs),
             static_cast<std::uint64_t>(c.numFpPhysRegs),
             static_cast<std::uint64_t>(c.numIntAlu),
             static_cast<std::uint64_t>(c.numIntMul),
             static_cast<std::uint64_t>(c.numIntDiv),
             static_cast<std::uint64_t>(c.numFpAdd),
             static_cast<std::uint64_t>(c.numFpMul),
             static_cast<std::uint64_t>(c.numFpDiv),
             static_cast<std::uint64_t>(c.numSimdAlu),
             static_cast<std::uint64_t>(c.numMemPorts),
             static_cast<std::uint64_t>(c.branchMispredictPenalty),
             static_cast<std::uint64_t>(c.l1d.size),
             static_cast<std::uint64_t>(c.l1d.lineSize),
             static_cast<std::uint64_t>(c.l1d.ways),
             static_cast<std::uint64_t>(c.l1d.hitLatency),
             static_cast<std::uint64_t>(c.l1d.missLatency),
             c.maxCycles,
             static_cast<std::uint64_t>(c.runSignature),
         })
        h.addWord(v);
    return h.value();
}

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_CORE_CONFIG_HH
