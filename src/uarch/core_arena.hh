/**
 * @file
 * Recyclable Core instances for batch evaluation.
 *
 * Grading a population used to construct and destroy one Core — with
 * its physical register files, 32 KB cache data array, memory backing
 * and window deques — per program. Core::run() already re-initialises
 * every piece of run state (that is what makes snapshots and repeated
 * run() calls sound), so the only thing a fresh construction buys is
 * freshly zeroed heap. The arena keeps Cores alive across a whole
 * generation instead: acquire() hands out a recycled instance whose
 * allocations (and provably-dead cache bytes, see L1Cache::reset)
 * carry over, and the RAII lease returns it on scope exit.
 *
 * Soundness: a recycled Core is observably indistinguishable from a
 * fresh one — run() performs a full reset and the skipped work is
 * exactly the state the stateDigest()/hashState() contracts already
 * classify as dead (tests/uarch/core_arena_test.cpp pins the
 * stateDigest trajectory; DESIGN.md §12 has the argument).
 *
 * Thread-safe: leases may be acquired and released from pool workers
 * concurrently; each leased Core is exclusively owned until release.
 */

#ifndef HARPOCRATES_UARCH_CORE_ARENA_HH
#define HARPOCRATES_UARCH_CORE_ARENA_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/hash.hh"
#include "uarch/core.hh"

namespace harpo::uarch
{

/** Pool of recyclable Core instances, matched by the structural
 *  CoreConfig fields that size their allocations. */
class CoreArena
{
    struct Slot
    {
        std::uint64_t structure = 0;
        std::unique_ptr<Core> core;
        bool inUse = false;
    };

  public:
    /** Exclusive RAII handle on an arena Core. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(CoreArena *a, Slot *s) : arena(a), slot(s) {}
        Lease(Lease &&o) noexcept : arena(o.arena), slot(o.slot)
        {
            o.arena = nullptr;
            o.slot = nullptr;
        }
        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                arena = o.arena;
                slot = o.slot;
                o.arena = nullptr;
                o.slot = nullptr;
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        Core &operator*() const { return *slot->core; }
        Core *operator->() const { return slot->core.get(); }
        Core *get() const { return slot ? slot->core.get() : nullptr; }

      private:
        void
        release()
        {
            if (arena)
                arena->put(slot);
            arena = nullptr;
            slot = nullptr;
        }

        CoreArena *arena = nullptr;
        Slot *slot = nullptr;
    };

    /**
     * Lease a Core configured as @p cfg. Prefers a free slot whose
     * previous config had the same structural shape (so register-file,
     * cache and memory allocations are recycled); falls back to
     * constructing a new slot. The returned Core behaves exactly like
     * a fresh `Core(cfg)` — run() fully re-initialises it.
     */
    Lease
    acquire(const CoreConfig &cfg)
    {
        const std::uint64_t key = structuralKey(cfg);
        std::lock_guard<std::mutex> lock(mu);
        for (Slot &slot : slots) {
            if (!slot.inUse && slot.structure == key) {
                slot.inUse = true;
                slot.core->reconfigure(cfg);
                ++reuseCount;
                return Lease(this, &slot);
            }
        }
        // No recyclable core of this shape: grow the pool. deque
        // keeps outstanding Slot pointers stable across growth.
        slots.push_back(Slot{key, std::make_unique<Core>(cfg), true});
        return Lease(this, &slots.back());
    }

    /** Acquisitions served by recycling (vs fresh construction). */
    std::uint64_t
    reuses() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return reuseCount;
    }

    /** Cores currently owned by the arena (leased or free). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return slots.size();
    }

  private:
    /** The CoreConfig fields that size a Core's allocations. */
    static std::uint64_t
    structuralKey(const CoreConfig &cfg)
    {
        Fnv1a h;
        h.addWord(cfg.numIntPhysRegs);
        h.addWord(cfg.numFpPhysRegs);
        h.addWord(cfg.l1d.size);
        h.addWord(cfg.l1d.lineSize);
        h.addWord(cfg.l1d.ways);
        return h.value();
    }

    void
    put(Slot *slot)
    {
        std::lock_guard<std::mutex> lock(mu);
        slot->inUse = false;
    }

    mutable std::mutex mu;
    std::deque<Slot> slots;
    std::uint64_t reuseCount = 0;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_CORE_ARENA_HH
