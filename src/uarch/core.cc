#include "uarch/core.hh"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/emulator.hh"
#include "isa/isa_table.hh"
#include "isa/semantics.hh"
#include "uarch/static_decode.hh"

namespace harpo::uarch
{

namespace
{

/** Process-wide tally of simulations started (run + resumeFrom). */
std::atomic<std::uint64_t> simsStarted{0};

} // namespace

/** ExecContext implementation mapping architectural accesses onto the
 *  core's renamed state and load/store queue. */
class CoreExecContext : public isa::ExecContext
{
  public:
    CoreExecContext(Core &c, DynInst &d) : core(c), dyn(d) {}

    bool retry = false;
    unsigned memLatency = 0;
    bool taken = false;

    /** How many of a read register's 64 bits this instruction can
     *  architecturally propagate (see CoreProbe::onIntRegRead) — a
     *  static first-order estimate of bit-level ACE liveness that
     *  accounts for the consumer's logical masking. */
    unsigned
    liveBitsHint(int arch_reg) const
    {
        if (arch_reg == isa::flagsReg)
            return 5; // only the modelled flag bits are live
        const isa::Op op = dyn.desc->op;
        switch (op) {
          case isa::Op::Cmp:
          case isa::Op::Test:
          case isa::Op::Ucomisd:
            return 6; // the comparison only produces flag bits
          case isa::Op::And:
          case isa::Op::Or:
            return 32; // a random mask kills half the bits
          case isa::Op::Cmovcc:
            return 32; // the unselected source is fully dead
          case isa::Op::Movsxd:
            return 32;
          case isa::Op::Shl:
          case isa::Op::Shr:
          case isa::Op::Sar: {
            // Shifted-out bits are dead; the count is static for
            // immediate forms.
            if (dyn.desc->numOperands >= 2 &&
                dyn.desc->operands[1].kind == isa::OperandKind::Imm) {
                const unsigned count =
                    static_cast<unsigned>(dyn.inst->ops[1].imm) & 63;
                return count >= 64 ? 1 : 64 - count;
            }
            return 32;
          }
          default:
            break;
        }
        // Narrow-width forms propagate at most their operand width.
        for (int i = 0; i < dyn.desc->numOperands; ++i) {
            const auto &spec = dyn.desc->operands[i];
            if (spec.kind == isa::OperandKind::Gpr && spec.width == 4)
                return 32;
        }
        return 64;
    }

    std::uint64_t
    readIntReg(int arch_reg) override
    {
        const unsigned phys = dyn.intMap[arch_reg];
        if (core.probe)
            core.probe->onIntRegRead(phys, liveBitsHint(arch_reg),
                                     core.now);
        return core.intRegs.read(phys);
    }

    void
    setIntReg(int arch_reg, std::uint64_t val) override
    {
        for (int i = 0; i < dyn.numDests; ++i) {
            auto &dest = dyn.dests[i];
            if (!dest.isFp && !dest.written &&
                dest.arch == arch_reg) {
                dest.written = true;
                core.intRegs.write(dest.newPhys, val);
                core.intLastDefSeq[dest.newPhys] = dyn.seq;
                if (core.probe)
                    core.probe->onIntRegWrite(
                        dest.newPhys, dest.arch, core.now);
                return;
            }
        }
        panic("setIntReg: semantics wrote an undeclared register for " +
              dyn.desc->mnemonic);
    }

    void
    readXmmReg(int arch_reg, std::uint64_t out[2]) override
    {
        core.fpRegs.read(dyn.fpMap[arch_reg], out);
    }

    void
    setXmmReg(int arch_reg, const std::uint64_t val[2]) override
    {
        for (int i = 0; i < dyn.numDests; ++i) {
            auto &dest = dyn.dests[i];
            if (dest.isFp && !dest.written && dest.arch == arch_reg) {
                dest.written = true;
                core.fpRegs.write(dest.newPhys, val);
                return;
            }
        }
        panic("setXmmReg: semantics wrote an undeclared register for " +
              dyn.desc->mnemonic);
    }

    bool
    readMem(std::uint64_t addr, unsigned size, std::uint8_t *data) override
    {
        // Store-to-load forwarding: scan older stores youngest-first.
        for (auto it = core.storeQueue.rbegin();
             it != core.storeQueue.rend(); ++it) {
            if (it->seq >= dyn.seq)
                continue;
            if (!it->executed) {
                // Conservative scheduling should prevent this; retry.
                retry = true;
                return false;
            }
            const bool overlap = addr < it->addr + it->size &&
                                 it->addr < addr + size;
            if (!overlap)
                continue;
            const bool contained =
                addr >= it->addr && addr + size <= it->addr + it->size;
            if (contained) {
                std::memcpy(data, it->data.data() + (addr - it->addr),
                            size);
                memLatency = std::max(memLatency, 1u);
                ++core.result.loadForwards;
                return true;
            }
            // Partial overlap: wait until the store drains to the
            // cache at commit.
            retry = true;
            return false;
        }
        unsigned lat = 0;
        if (!core.cache.read(addr, size, data, lat, core.now, core.probe,
                             &core)) {
            return false;
        }
        memLatency = std::max(memLatency, lat);
        return true;
    }

    bool
    writeMem(std::uint64_t addr, unsigned size,
             const std::uint8_t *data) override
    {
        for (auto it = core.storeQueue.rbegin();
             it != core.storeQueue.rend(); ++it) {
            if (it->seq == dyn.seq) {
                it->addr = addr;
                it->size = size;
                std::memcpy(it->data.data(), data, size);
                it->executed = true;
                memLatency = std::max(memLatency, 1u);
                return true;
            }
        }
        panic("writeMem: no store-queue entry for " + dyn.desc->mnemonic);
    }

    void setTaken(bool t) override { taken = t; }

    isa::ArithModel &arith() override { return *core.arithModel; }

    std::uint64_t nondetValue() override { return nondet.next(); }

  private:
    Core &core;
    DynInst &dyn;
    Rng nondet{0x5EED5EED};
};

Core::Core(const CoreConfig &config) : cfg(config) {}

Core::FuPool &
Core::poolFor(isa::OpClass cls)
{
    return fuPools[static_cast<std::size_t>(cls)];
}

bool
Core::acquireFu(const isa::InstrDesc &desc, std::uint64_t until)
{
    FuPool &pool =
        desc.usesMemory() ? memPorts : poolFor(desc.opClass);
    if (pool.count == 0)
        return false;
    if (desc.pipelined || desc.usesMemory()) {
        if (pool.usedThisCycle >= pool.count)
            return false;
        ++pool.usedThisCycle;
        return true;
    }
    // Unpipelined: find a unit that is idle and occupy it.
    for (auto &busy : pool.busyUntil) {
        if (busy <= now) {
            busy = until;
            return true;
        }
    }
    return false;
}

bool
Core::olderStorePending(std::uint64_t seq) const
{
    for (const auto &entry : storeQueue) {
        if (entry.seq >= seq)
            break;
        if (!entry.executed)
            return true;
    }
    return false;
}

void
Core::squashAfter(std::uint64_t seq, std::uint32_t restart_pc)
{
    iq.erase(std::remove_if(iq.begin(), iq.end(),
                            [seq](DynInst *d) { return d->seq > seq; }),
             iq.end());

    while (!rob.empty() && rob.back().seq > seq) {
        DynInst &d = rob.back();
        ++result.instsSquashed;
        for (int i = d.numDests - 1; i >= 0; --i) {
            const auto &dest = d.dests[i];
            if (dest.isFp) {
                specFpMap[dest.arch] = dest.prevPhys;
                fpRegs.free(dest.newPhys);
            } else {
                specIntMap[dest.arch] = dest.prevPhys;
                intRegs.free(dest.newPhys);
                if (probe)
                    probe->onRenameWrite(dest.arch, now);
            }
        }
        if (d.isStore && !storeQueue.empty() &&
            storeQueue.back().seq == d.seq) {
            storeQueue.pop_back();
        }
        if (d.isLoad && loadsInFlight > 0)
            --loadsInFlight;
        rob.pop_back();
    }

    frontQueue.clear();
    fetchPc = restart_pc;
    fetchResumeCycle = now + cfg.branchMispredictPenalty;
}

void
Core::commitStage()
{
    const std::size_t codeSize = program->code.size();

    for (unsigned n = 0; n < cfg.commitWidth && !rob.empty(); ++n) {
        DynInst &head = rob.front();
        if (!head.executed || head.completeCycle > now)
            break;

        if (head.fault != isa::ExecStatus::Ok) {
            result.exit = SimResult::Exit::Crashed;
            result.crash = head.fault == isa::ExecStatus::DivFault
                               ? CrashKind::DivFault
                               : CrashKind::BadAddress;
            running = false;
            return;
        }
        if (head.badBranch) {
            result.exit = SimResult::Exit::Crashed;
            result.crash = CrashKind::BadBranch;
            running = false;
            return;
        }

        if (head.isStore) {
            panicIf(storeQueue.empty() ||
                        storeQueue.front().seq != head.seq,
                    "commit: store queue out of sync");
            StoreEntry &entry = storeQueue.front();
            unsigned lat = 0;
            if (!cache.write(entry.addr, entry.size, entry.data.data(),
                             lat, now, probe, this)) {
                result.exit = SimResult::Exit::Crashed;
                result.crash = CrashKind::BadAddress;
                running = false;
                return;
            }
            storeQueue.pop_front();
        }
        if (head.isLoad && loadsInFlight > 0)
            --loadsInFlight;

        for (int i = 0; i < head.numDests; ++i) {
            const auto &dest = head.dests[i];
            if (dest.isFp) {
                commitFpMap[dest.arch] = dest.newPhys;
                fpRegs.free(dest.prevPhys);
            } else {
                commitIntMap[dest.arch] = dest.newPhys;
                intRegs.free(dest.prevPhys);
            }
        }

        ++result.instsCommitted;
        if (probe)
            probe->onInstCommitted(head.seq);
        rob.pop_front();
    }

    if (rob.empty() && frontQueue.empty() && fetchPc >= codeSize) {
        running = false;
        result.exit = SimResult::Exit::Finished;
    }
}

void
Core::issueStage()
{
    for (auto &pool : fuPools)
        pool.usedThisCycle = 0;
    memPorts.usedThisCycle = 0;

    unsigned issued = 0;
    bool squashed = false;
    const std::size_t codeSize = program->code.size();

    for (std::size_t k = 0; k < iq.size() && issued < cfg.issueWidth;
         ++k) {
        DynInst *d = iq[k];
        if (!d->inIq)
            continue;

        // Source readiness.
        bool ready = true;
        for (int i = 0; i < d->numIntSrcs && ready; ++i)
            ready = intRegs.isReady(d->intMap[d->intSrcs[i]], now);
        for (int i = 0; i < d->numFpSrcs && ready; ++i)
            ready = fpRegs.isReady(d->fpMap[d->fpSrcs[i]], now);
        if (!ready)
            continue;

        // Conservative memory ordering: loads wait for older stores'
        // addresses and data.
        if (d->isLoad && olderStorePending(d->seq))
            continue;

        const std::uint64_t occupyUntil =
            now + static_cast<std::uint64_t>(d->desc->latency);
        if (!acquireFu(*d->desc, occupyUntil))
            continue;

        // Capture source def identities before execution (for the
        // def-use dataflow probe).
        ExecInfo info;
        if (probe) {
            info.seq = d->seq;
            info.cycle = now;
            info.isStore = d->isStore;
            info.isBranch = d->desc->isBranch;
            for (int i = 0; i < d->numIntSrcs; ++i) {
                const unsigned arch = d->intSrcs[i];
                const unsigned phys = d->intMap[arch];
                auto &src = info.srcs[info.numSrcs++];
                src.phys = static_cast<std::uint16_t>(phys);
                src.defSeq = intLastDefSeq[phys];
                src.liveBits = 64; // refined below via the context
            }
        }

        CoreExecContext ctx(*this, *d);
        const isa::ExecStatus status = isa::execute(*d->inst, ctx);
        if (ctx.retry) {
            // Roll back any partial dest marks (none should exist:
            // retries fire before architectural writes).
            continue;
        }
        ++issued;
        ++result.instsIssued;
        d->executed = true;
        d->fault = status;
        d->inIq = false;
        if (probe) {
            info.faulted = status != isa::ExecStatus::Ok;
            for (int i = 0; i < info.numSrcs; ++i) {
                info.srcs[i].liveBits = static_cast<std::uint8_t>(
                    ctx.liveBitsHint(d->intSrcs[i]));
            }
            for (int i = 0; i < d->numDests; ++i) {
                if (d->dests[i].isFp)
                    continue;
                auto &def = info.defs[info.numDefs++];
                def.phys = d->dests[i].newPhys;
                def.arch = d->dests[i].arch;
            }
            probe->onInstExecuted(info);
        }
        const unsigned lat =
            static_cast<unsigned>(d->desc->latency) + ctx.memLatency;
        d->completeCycle = now + std::max(1u, lat);
        for (int i = 0; i < d->numDests; ++i) {
            const auto &dest = d->dests[i];
            if (dest.isFp)
                fpRegs.setReadyAt(dest.newPhys, d->completeCycle);
            else
                intRegs.setReadyAt(dest.newPhys, d->completeCycle);
        }

        if (d->desc->isBranch) {
            d->actualTaken = ctx.taken;
            predictor.update(d->pc, d->actualTaken);
            if (probe)
                probe->onBpUpdate(d->pc, now);
            std::int64_t next = d->pc + 1;
            if (d->actualTaken) {
                const std::int64_t target = d->inst->branchTarget;
                if (target < 0 ||
                    target > static_cast<std::int64_t>(codeSize)) {
                    d->badBranch = true;
                    squashAfter(d->seq,
                                static_cast<std::uint32_t>(codeSize));
                    squashed = true;
                    break;
                }
                next = target;
            }
            d->nextPc = static_cast<std::uint32_t>(next);
            if (d->actualTaken != d->predTaken) {
                ++result.branchMispredicts;
                squashAfter(d->seq, d->nextPc);
                squashed = true;
                break;
            }
        }
    }
    (void)squashed;

    iq.erase(std::remove_if(iq.begin(), iq.end(),
                            [](DynInst *d) { return !d->inIq; }),
             iq.end());
}

void
Core::renameStage()
{
    bool renamedAny = false;
    bool hadWork = false;
    for (unsigned n = 0; n < cfg.renameWidth && !frontQueue.empty();
         ++n) {
        const FetchedInst &fetched = frontQueue.front();
        if (fetched.readyCycle > now)
            break;
        hadWork = true;

        const isa::Inst &inst = program->code[fetched.pc];

        // Rename metadata: replay the pre-decoded StaticInst when the
        // caller supplied one, else derive it here. Both paths go
        // through deriveStatic() — one source of truth, so they cannot
        // disagree on source lists, dest order, or hazard counts.
        StaticInst derived;
        const StaticInst *si;
        if (staticProg) {
            si = &staticProg->insts[fetched.pc];
        } else {
            derived =
                deriveStatic(inst, isa::isaTable().desc(inst.descId));
            si = &derived;
        }
        const isa::InstrDesc &desc = *si->desc;

        // Structural hazards.
        if (rob.size() >= cfg.robSize || iq.size() >= cfg.iqSize)
            break;
        if (intRegs.numFree() < si->intDests ||
            fpRegs.numFree() < si->fpDests) {
            break;
        }
        if (desc.isLoad && loadsInFlight >= cfg.lqSize)
            break;
        if (desc.isStore && storeQueue.size() >= cfg.sqSize)
            break;

        DynInst dyn;
        dyn.seq = nextSeq++;
        dyn.pc = fetched.pc;
        dyn.inst = &inst;
        dyn.desc = &desc;
        dyn.predTaken = fetched.predTaken;
        dyn.isLoad = desc.isLoad;
        dyn.isStore = desc.isStore;
        dyn.intMap = specIntMap;
        dyn.fpMap = specFpMap;
        dyn.inIq = true;

        dyn.intSrcs = si->intSrcs;
        dyn.numIntSrcs = si->numIntSrcs;
        dyn.fpSrcs = si->fpSrcs;
        dyn.numFpSrcs = si->numFpSrcs;

        if (probe) {
            for (int i = 0; i < si->numIntSrcs; ++i)
                probe->onRenameRead(si->intSrcs[i], now);
        }

        for (int i = 0; i < si->numDests; ++i) {
            const auto &spec = si->dests[i];
            auto &dest = dyn.dests[dyn.numDests++];
            dest.arch = spec.arch;
            dest.isFp = spec.isFp;
            if (spec.isFp) {
                dest.prevPhys = specFpMap[spec.arch];
                dest.newPhys = static_cast<std::uint16_t>(fpRegs.alloc());
                specFpMap[spec.arch] = dest.newPhys;
            } else {
                dest.prevPhys = specIntMap[spec.arch];
                dest.newPhys =
                    static_cast<std::uint16_t>(intRegs.alloc());
                specIntMap[spec.arch] = dest.newPhys;
                if (probe)
                    probe->onRenameWrite(spec.arch, now);
            }
        }

        if (dyn.isStore)
            storeQueue.push_back({dyn.seq, false, 0, 0, {}});
        if (dyn.isLoad)
            ++loadsInFlight;

        rob.push_back(dyn);
        iq.push_back(&rob.back());
        frontQueue.pop_front();
        renamedAny = true;
    }
    if (hadWork && !renamedAny)
        ++result.renameStallCycles;
}

void
Core::fetchStage()
{
    if (now < fetchResumeCycle)
        return;
    const std::size_t codeSize = program->code.size();
    const std::size_t queueLimit =
        static_cast<std::size_t>(cfg.fetchWidth) *
        (cfg.frontendDelay + 2);

    for (unsigned n = 0;
         n < cfg.fetchWidth && frontQueue.size() < queueLimit; ++n) {
        if (fetchPc >= codeSize)
            return;
        const isa::Inst &inst = program->code[fetchPc];
        const isa::InstrDesc &desc =
            staticProg ? *staticProg->insts[fetchPc].desc
                       : isa::isaTable().desc(inst.descId);

        bool predTaken = false;
        std::uint32_t next = fetchPc + 1;
        if (desc.isBranch) {
            if (desc.isCondBranch && probe)
                probe->onBpLookup(fetchPc, now);
            predTaken =
                desc.isCondBranch ? predictor.predict(fetchPc) : true;
            if (predTaken) {
                const std::int64_t target = inst.branchTarget;
                if (target >= 0 &&
                    target <= static_cast<std::int64_t>(codeSize)) {
                    next = static_cast<std::uint32_t>(target);
                }
                // An invalid static target cannot redirect fetch; the
                // branch faults at execute.
            }
        }
        frontQueue.push_back({fetchPc, now + cfg.frontendDelay,
                              predTaken});
        fetchPc = next;
        if (predTaken)
            break;
    }
}

void
Core::finishRun()
{
    cache.flush(now, probe, this);

    std::array<std::uint64_t, 16> gpr{};
    for (int r = 0; r < 16; ++r)
        gpr[r] = intRegs.read(commitIntMap[r]);
    const std::uint64_t flags = intRegs.read(commitIntMap[isa::flagsReg]);
    std::array<std::array<std::uint64_t, 2>, 16> xmm{};
    for (int r = 0; r < 16; ++r)
        fpRegs.read(commitFpMap[r], xmm[r].data());

    result.signature =
        cfg.runSignature
            ? isa::computeSignature(gpr, flags, xmm, memory)
            : 0;
}

void
Core::reset(const isa::TestProgram &prog)
{
    program = &prog;

    memory.reset(prog);
    cache.reset(cfg.l1d, &memory);
    intRegs.reset(cfg.numIntPhysRegs);
    fpRegs.reset(cfg.numFpPhysRegs);
    predictor.reset();

    panicIf(cfg.numIntPhysRegs < isa::numIntArchRegs + 8,
            "too few integer physical registers");
    panicIf(cfg.numFpPhysRegs < isa::numXmmArchRegs + 8,
            "too few FP physical registers");

    for (int r = 0; r < isa::numIntArchRegs; ++r) {
        const unsigned phys = intRegs.alloc();
        intRegs.write(phys, r < 16 ? prog.initGpr[r] : 0);
        intRegs.markReadyNow(phys);
        specIntMap[r] = commitIntMap[r] =
            static_cast<std::uint16_t>(phys);
    }
    for (int r = 0; r < isa::numXmmArchRegs; ++r) {
        const unsigned phys = fpRegs.alloc();
        fpRegs.write(phys, prog.initXmm[r].data());
        fpRegs.markReadyNow(phys);
        specFpMap[r] = commitFpMap[r] = static_cast<std::uint16_t>(phys);
    }

    for (auto &pool : fuPools)
        pool = FuPool{};
    auto setPool = [&](isa::OpClass cls, unsigned count,
                       bool needs_busy) {
        FuPool &pool = poolFor(cls);
        pool.count = count;
        if (needs_busy)
            pool.busyUntil.assign(count, 0);
    };
    setPool(isa::OpClass::IntAlu, cfg.numIntAlu, false);
    setPool(isa::OpClass::IntMul, cfg.numIntMul, false);
    setPool(isa::OpClass::IntDiv, cfg.numIntDiv, true);
    setPool(isa::OpClass::FpAdd, cfg.numFpAdd, false);
    setPool(isa::OpClass::FpMul, cfg.numFpMul, false);
    setPool(isa::OpClass::FpDiv, cfg.numFpDiv, true);
    setPool(isa::OpClass::FpCvt, cfg.numSimdAlu, false);
    setPool(isa::OpClass::SimdAlu, cfg.numSimdAlu, false);
    setPool(isa::OpClass::Branch, cfg.numIntAlu, false);
    setPool(isa::OpClass::NoOp, cfg.numIntAlu, false);
    memPorts = FuPool{};
    memPorts.count = cfg.numMemPorts;

    intLastDefSeq.assign(cfg.numIntPhysRegs, 0);
    rob.clear();
    iq.clear();
    storeQueue.clear();
    frontQueue.clear();
    loadsInFlight = 0;
    fetchPc = 0;
    fetchResumeCycle = 0;
    now = 0;
    nextSeq = 1;
    result = SimResult{};
    stopRequested = false;
    running = false;
}

SimResult
Core::run(const isa::TestProgram &prog, isa::ArithModel *arith,
          CoreProbe *probe_in, const StaticProgram *predecoded)
{
    simsStarted.fetch_add(1, std::memory_order_relaxed);
    panicIf(predecoded && predecoded->insts.size() != prog.code.size(),
            "run: pre-decoded metadata does not match the program");
    probe = probe_in;
    arithModel = arith ? arith : &isa::ArithModel::functional();
    staticProg = predecoded;

    reset(prog);
    running = true;
    return mainLoop();
}

std::uint64_t
Core::simulationsStarted()
{
    return simsStarted.load(std::memory_order_relaxed);
}

SimResult
Core::mainLoop()
{
    while (running) {
        if (now >= cfg.maxCycles) {
            result.exit = SimResult::Exit::Hang;
            running = false;
            break;
        }
        if (cfg.budget &&
            (cfg.budgetPollCycles <= 1 ||
             now % cfg.budgetPollCycles == 0) &&
            cfg.budget->expired()) {
            result.exit = SimResult::Exit::Cancelled;
            running = false;
            break;
        }
        if (probe) {
            probe->onCycleBegin(*this, now);
            if (stopRequested) {
                result.exit = SimResult::Exit::Stopped;
                running = false;
                break;
            }
        }
        commitStage();
        if (!running)
            break;
        issueStage();
        renameStage();
        fetchStage();
        ++now;
    }

    result.cycles = now;
    result.cacheHits = cache.hits;
    result.cacheMisses = cache.misses;
    if (result.exit == SimResult::Exit::Finished)
        finishRun();
    if (probe)
        probe->onRunEnd(*this, now);
    return result;
}

Core::Snapshot
Core::saveSnapshot() const
{
    Snapshot s;
    s.memory = memory;
    s.cache = cache; // backing pointer rebound on restore
    s.intRegs = intRegs;
    s.fpRegs = fpRegs;
    s.predictor = predictor;

    s.specIntMap = specIntMap;
    s.specFpMap = specFpMap;
    s.commitIntMap = commitIntMap;
    s.commitFpMap = commitFpMap;
    s.intLastDefSeq = intLastDefSeq;

    s.rob = rob;
    s.iqSeqs.reserve(iq.size());
    for (const DynInst *d : iq)
        s.iqSeqs.push_back(d->seq);
    s.storeQueue = storeQueue;
    s.loadsInFlight = loadsInFlight;

    s.frontQueue = frontQueue;
    s.fetchPc = fetchPc;
    s.fetchResumeCycle = fetchResumeCycle;

    s.fuPools = fuPools;
    s.memPorts = memPorts;

    s.now = now;
    s.nextSeq = nextSeq;
    s.result = result;
    return s;
}

SimResult
Core::resumeFrom(const Snapshot &snap, const isa::TestProgram &prog,
                 isa::ArithModel *arith, CoreProbe *probe_in)
{
    panicIf(snap.intRegs.size() != cfg.numIntPhysRegs ||
                snap.fpRegs.size() != cfg.numFpPhysRegs ||
                snap.cache.dataSize() != cfg.l1d.size,
            "resumeFrom: snapshot taken under a different core config");

    simsStarted.fetch_add(1, std::memory_order_relaxed);
    program = &prog;
    probe = probe_in;
    arithModel = arith ? arith : &isa::ArithModel::functional();
    staticProg = nullptr; // rename re-derives after a restore

    memory = snap.memory;
    cache = snap.cache;
    cache.rebind(&memory);
    intRegs = snap.intRegs;
    fpRegs = snap.fpRegs;
    predictor = snap.predictor;

    specIntMap = snap.specIntMap;
    specFpMap = snap.specFpMap;
    commitIntMap = snap.commitIntMap;
    commitFpMap = snap.commitFpMap;
    intLastDefSeq = snap.intLastDefSeq;

    rob = snap.rob;
    for (DynInst &d : rob) {
        panicIf(d.pc >= prog.code.size(),
                "resumeFrom: snapshot does not match the program");
        d.inst = &prog.code[d.pc];
        d.desc = &isa::isaTable().desc(d.inst->descId);
    }
    iq.clear();
    iq.reserve(snap.iqSeqs.size());
    for (const std::uint64_t seq : snap.iqSeqs) {
        for (DynInst &d : rob) {
            if (d.seq == seq) {
                iq.push_back(&d);
                break;
            }
        }
    }
    panicIf(iq.size() != snap.iqSeqs.size(),
            "resumeFrom: issue queue out of sync with ROB");
    storeQueue = snap.storeQueue;
    loadsInFlight = snap.loadsInFlight;

    frontQueue = snap.frontQueue;
    fetchPc = snap.fetchPc;
    fetchResumeCycle = snap.fetchResumeCycle;

    fuPools = snap.fuPools;
    memPorts = snap.memPorts;

    now = snap.now;
    nextSeq = snap.nextSeq;
    result = snap.result;
    stopRequested = false;
    running = true;

    return mainLoop();
}

std::uint64_t
Core::stateDigest() const
{
    StateHash h;
    h.addWord(now);
    h.addWord(nextSeq);
    h.addWord(fetchPc);
    h.addWord(fetchResumeCycle > now ? fetchResumeCycle : 0);
    h.addWord(loadsInFlight);

    for (const std::uint16_t v : specIntMap)
        h.addWord(v);
    for (const std::uint16_t v : specFpMap)
        h.addWord(v);
    for (const std::uint16_t v : commitIntMap)
        h.addWord(v);
    for (const std::uint16_t v : commitFpMap)
        h.addWord(v);

    intRegs.hashLiveState(h, now);
    fpRegs.hashLiveState(h, now);
    predictor.hashInto(h);
    cache.hashState(h);
    memory.hashInto(h);

    h.addWord(rob.size());
    for (const DynInst &d : rob) {
        h.addWord(d.seq);
        h.addWord(d.pc);
        for (const std::uint16_t v : d.intMap)
            h.addWord(v);
        for (const std::uint16_t v : d.fpMap)
            h.addWord(v);
        h.addWord(static_cast<std::uint64_t>(d.numDests) |
                  (static_cast<std::uint64_t>(d.numIntSrcs) << 8) |
                  (static_cast<std::uint64_t>(d.numFpSrcs) << 16));
        for (int i = 0; i < d.numDests; ++i) {
            const auto &dest = d.dests[i];
            h.addWord(static_cast<std::uint64_t>(dest.arch) |
                      (static_cast<std::uint64_t>(dest.newPhys) << 8) |
                      (static_cast<std::uint64_t>(dest.prevPhys) << 24) |
                      (static_cast<std::uint64_t>(dest.isFp) << 40) |
                      (static_cast<std::uint64_t>(dest.written) << 41));
        }
        for (int i = 0; i < d.numIntSrcs; ++i)
            h.addWord(d.intSrcs[i]);
        for (int i = 0; i < d.numFpSrcs; ++i)
            h.addWord(d.fpSrcs[i]);
        h.addWord(static_cast<std::uint64_t>(d.inIq) |
                  (static_cast<std::uint64_t>(d.executed) << 1) |
                  (static_cast<std::uint64_t>(d.isLoad) << 2) |
                  (static_cast<std::uint64_t>(d.isStore) << 3) |
                  (static_cast<std::uint64_t>(d.badBranch) << 4) |
                  (static_cast<std::uint64_t>(d.predTaken) << 5) |
                  (static_cast<std::uint64_t>(d.actualTaken) << 6) |
                  (static_cast<std::uint64_t>(d.fault) << 8));
        h.addWord(d.completeCycle > now ? d.completeCycle : 0);
        h.addWord(d.nextPc);
    }

    h.addWord(iq.size());
    for (const DynInst *d : iq)
        h.addWord(d->seq);

    h.addWord(storeQueue.size());
    for (const StoreEntry &s : storeQueue) {
        h.addWord(s.seq);
        h.addWord(s.executed);
        h.addWord(s.addr);
        h.addWord(s.size);
        h.addBytes(s.data.data(), s.size);
    }

    h.addWord(frontQueue.size());
    for (const FetchedInst &f : frontQueue) {
        h.addWord(f.pc);
        h.addWord(f.readyCycle > now ? f.readyCycle : 0);
        h.addWord(f.predTaken);
    }

    for (const FuPool &pool : fuPools) {
        for (const std::uint64_t busy : pool.busyUntil)
            h.addWord(busy > now ? busy : 0);
    }
    for (const std::uint64_t busy : memPorts.busyUntil)
        h.addWord(busy > now ? busy : 0);

    return h.value();
}

bool
Core::flipRobDestBit(std::uint32_t entry, unsigned bit)
{
    if (entry >= rob.size())
        return false;
    DynInst &d = rob[entry];
    for (int i = 0; i < d.numDests; ++i) {
        auto &dest = d.dests[i];
        if (dest.isFp)
            continue;
        // Wrap into the PRF so a flipped high bit still names a real
        // register; with the default power-of-two PRF the wrap is a
        // no-op and the flip is an involution.
        dest.newPhys = static_cast<std::uint16_t>(
            (dest.newPhys ^ (1u << bit)) % cfg.numIntPhysRegs);
        return true;
    }
    return false; // no integer destination: the sampled site is empty
}

bool
Core::forceRobDestBit(std::uint32_t entry, unsigned bit, bool value)
{
    if (entry >= rob.size())
        return false;
    DynInst &d = rob[entry];
    for (int i = 0; i < d.numDests; ++i) {
        auto &dest = d.dests[i];
        if (dest.isFp)
            continue;
        std::uint32_t tag = dest.newPhys;
        if (value)
            tag |= 1u << bit;
        else
            tag &= ~(1u << bit);
        dest.newPhys =
            static_cast<std::uint16_t>(tag % cfg.numIntPhysRegs);
        return true;
    }
    return false;
}

bool
Core::flipRenameMapBit(std::uint32_t arch_reg, unsigned bit)
{
    if (arch_reg >= specIntMap.size())
        return false;
    specIntMap[arch_reg] = static_cast<std::uint16_t>(
        (specIntMap[arch_reg] ^ (1u << bit)) % cfg.numIntPhysRegs);
    return true;
}

bool
Core::forceRenameMapBit(std::uint32_t arch_reg, unsigned bit, bool value)
{
    if (arch_reg >= specIntMap.size())
        return false;
    std::uint32_t tag = specIntMap[arch_reg];
    if (value)
        tag |= 1u << bit;
    else
        tag &= ~(1u << bit);
    specIntMap[arch_reg] =
        static_cast<std::uint16_t>(tag % cfg.numIntPhysRegs);
    return true;
}

bool
Core::flipStoreDataBit(std::uint32_t entry, unsigned bit)
{
    if (entry >= storeQueue.size() || bit >= 128)
        return false;
    storeQueue[entry].data[bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    return true;
}

bool
Core::forceStoreDataBit(std::uint32_t entry, unsigned bit, bool value)
{
    if (entry >= storeQueue.size() || bit >= 128)
        return false;
    std::uint8_t &byte = storeQueue[entry].data[bit / 8];
    if (value)
        byte |= static_cast<std::uint8_t>(1u << (bit % 8));
    else
        byte &= static_cast<std::uint8_t>(~(1u << (bit % 8)));
    return true;
}

bool
Core::flipPredictorBit(std::uint32_t slot, unsigned bit)
{
    return predictor.flipBit(slot, bit);
}

bool
Core::forcePredictorBit(std::uint32_t slot, unsigned bit, bool value)
{
    return predictor.forceBit(slot, bit, value);
}

std::size_t
Core::Snapshot::footprintBytes() const
{
    std::size_t n = sizeof(Snapshot);
    n += memory.backingBytes();
    n += cache.dataSize();
    n += cache.dataSize() / 16; // line metadata, roughly
    n += intRegs.size() * 16 + fpRegs.size() * 24;
    n += intLastDefSeq.size() * 8;
    n += rob.size() * sizeof(DynInst);
    n += iqSeqs.size() * 8;
    n += storeQueue.size() * sizeof(StoreEntry);
    n += frontQueue.size() * sizeof(FetchedInst);
    return n;
}

} // namespace harpo::uarch
