/**
 * @file
 * Pre-decoded static rename metadata, shared across programs.
 *
 * renameStage derives the same per-instruction facts — source register
 * lists, destination slots, structural-hazard counts — for every
 * dynamic instance of every static instruction, on every run. A
 * StaticProgram hoists that derivation out of the cycle loop: one
 * StaticInst per static instruction, derived once and consulted by
 * rename/fetch thereafter.
 *
 * Populations amplify the win: mutants differ from their parent in a
 * few instruction *variants*, so almost every instruction word of a
 * generation has already been decoded. DecodeCache keys StaticInsts by
 * instruction content (full field comparison on hit — a hash collision
 * can never substitute a wrong decode), so building a mutant's
 * StaticProgram is mostly cache lookups.
 *
 * Soundness: deriveStatic() is the single source of truth — the
 * non-pre-decoded rename path calls it per rename, the pre-decoded
 * path replays its stored result — so the two paths cannot diverge
 * (tests/uarch/static_decode_test.cpp pins this).
 */

#ifndef HARPOCRATES_UARCH_STATIC_DECODE_HH
#define HARPOCRATES_UARCH_STATIC_DECODE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace harpo::uarch
{

/** Everything renameStage derives from one static instruction, in the
 *  exact order the derivation appends it. */
struct StaticInst
{
    const isa::InstrDesc *desc = nullptr;

    /** Integer/FP architectural source registers, in read order. */
    std::array<std::uint8_t, 6> intSrcs{};
    std::uint8_t numIntSrcs = 0;
    std::array<std::uint8_t, 2> fpSrcs{};
    std::uint8_t numFpSrcs = 0;

    /** Destination slots, in allocation order. */
    struct DestSpec
    {
        std::uint8_t arch = 0;
        bool isFp = false;
    };
    std::array<DestSpec, 5> dests{};
    std::uint8_t numDests = 0;

    /** Structural-hazard demand (physical registers needed). */
    std::uint8_t intDests = 0;
    std::uint8_t fpDests = 0;
};

/** Derive the rename metadata of @p inst. The single source of truth
 *  for both the per-rename path and the pre-decoded path. */
StaticInst deriveStatic(const isa::Inst &inst,
                        const isa::InstrDesc &desc);

/** A program's static instructions, pre-decoded; index == pc. */
struct StaticProgram
{
    std::vector<StaticInst> insts;

    std::size_t size() const { return insts.size(); }
};

/**
 * Content-keyed cache of StaticInsts shared across a population: the
 * same instruction word (descriptor + operands + branch target)
 * decodes once, however many programs and generations contain it.
 * Not thread-safe — callers build StaticPrograms serially (building
 * is a tiny fraction of evaluation) or hold their own instance.
 */
class DecodeCache
{
  public:
    /** Pre-decode @p program, reusing cached entries. */
    std::shared_ptr<const StaticProgram>
    build(const isa::TestProgram &program);

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        isa::Inst inst; ///< collision guard: compared field-by-field
        StaticInst decoded;
    };
    std::unordered_map<std::uint64_t, std::vector<Entry>> entries;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_STATIC_DECODE_HH
