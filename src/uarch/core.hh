/**
 * @file
 * The out-of-order core model.
 *
 * An execute-in-execute design (like gem5's O3): register renaming onto
 * physical register files that hold real values, an issue queue, a
 * conservative load/store queue with store-to-load forwarding, a
 * write-back L1D with real data, and in-order commit. Because every
 * bit-holding structure carries real program data, injected faults
 * propagate or mask through renaming, forwarding, overwrites and
 * evictions exactly where hardware masking happens.
 */

#ifndef HARPOCRATES_UARCH_CORE_HH
#define HARPOCRATES_UARCH_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "isa/arith_model.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/registers.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/core_config.hh"
#include "uarch/phys_regfile.hh"
#include "uarch/probes.hh"

namespace harpo::uarch
{

struct StaticProgram; // uarch/static_decode.hh

/** Why a run crashed (when it did). */
enum class CrashKind : std::uint8_t
{
    None,
    BadAddress,
    DivFault,
    BadBranch,
};

/** Result of simulating one program on the core. */
struct SimResult
{
    enum class Exit : std::uint8_t
    {
        Finished,
        Crashed,
        Hang,
        Cancelled, ///< the CoreConfig::budget expired mid-run
        Stopped,   ///< a probe called Core::requestStop() mid-run
    };

    Exit exit = Exit::Finished;
    CrashKind crash = CrashKind::None;
    std::uint64_t cycles = 0;
    std::uint64_t instsCommitted = 0;
    std::uint64_t signature = 0;

    // Microarchitectural statistics.
    std::uint64_t branchMispredicts = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t instsIssued = 0;    ///< incl. wrong-path work
    std::uint64_t instsSquashed = 0;  ///< renamed but thrown away
    std::uint64_t loadForwards = 0;   ///< loads served by the SQ
    std::uint64_t renameStallCycles = 0; ///< cycles rename was blocked

    bool crashed() const { return exit != Exit::Finished; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instsCommitted) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** An in-flight instruction. */
struct DynInst
{
    std::uint64_t seq = 0;
    std::uint32_t pc = 0;
    const isa::Inst *inst = nullptr;
    const isa::InstrDesc *desc = nullptr;

    /** Rename-time source mapping snapshot (before own dest alloc). */
    std::array<std::uint16_t, isa::numIntArchRegs> intMap{};
    std::array<std::uint16_t, isa::numXmmArchRegs> fpMap{};

    struct Dest
    {
        std::uint8_t arch = 0;
        std::uint16_t newPhys = 0;
        std::uint16_t prevPhys = 0;
        bool isFp = false;
        bool written = false;
    };
    std::array<Dest, 5> dests{};
    int numDests = 0;

    /** Integer/FP architectural registers this instruction reads. */
    std::array<std::uint8_t, 6> intSrcs{};
    int numIntSrcs = 0;
    std::array<std::uint8_t, 2> fpSrcs{};
    int numFpSrcs = 0;

    bool inIq = false;
    bool executed = false;
    std::uint64_t completeCycle = 0;

    bool isLoad = false;
    bool isStore = false;
    isa::ExecStatus fault = isa::ExecStatus::Ok;
    bool badBranch = false;

    bool predTaken = false;
    bool actualTaken = false;
    std::uint32_t nextPc = 0;
};

/** A store buffered between execute and commit. */
struct StoreEntry
{
    std::uint64_t seq = 0;
    bool executed = false;
    std::uint64_t addr = 0;
    unsigned size = 0;
    std::array<std::uint8_t, 16> data{};
};

/** The core. One instance simulates one program at a time. */
class Core
{
    // Frontend / functional-unit bookkeeping types, declared before
    // Snapshot so the snapshot can embed them by value.
    struct FetchedInst
    {
        std::uint32_t pc = 0;
        std::uint64_t readyCycle = 0;
        bool predTaken = false;
    };

    struct FuPool
    {
        unsigned count = 0;
        unsigned usedThisCycle = 0;
        std::vector<std::uint64_t> busyUntil;
    };

    static constexpr std::size_t numFuPools =
        static_cast<std::size_t>(isa::OpClass::NumClasses);

  public:
    explicit Core(const CoreConfig &config);

    /**
     * A complete copy of everything that determines the remainder of
     * a run: architectural and microarchitectural state, memory and
     * cache contents, in-flight windows, frontend, FU occupancy,
     * cycle and sequence counters, and accumulated statistics.
     *
     * Opaque value type: produce with saveSnapshot() (typically from
     * a CoreProbe::onCycleBegin), consume with resumeFrom() on any
     * Core built with the same CoreConfig and the same program
     * *content* (instruction pointers are re-derived from PCs, so the
     * program object's identity does not matter). Snapshots are
     * self-contained and immutable — share one read-only instance
     * across worker threads freely.
     */
    struct Snapshot
    {
        isa::Memory memory;
        L1Cache cache; ///< backing pointer rebound on restore
        PhysRegFile intRegs;
        FpPhysRegFile fpRegs;
        BranchPredictor predictor;

        std::array<std::uint16_t, isa::numIntArchRegs> specIntMap{};
        std::array<std::uint16_t, isa::numXmmArchRegs> specFpMap{};
        std::array<std::uint16_t, isa::numIntArchRegs> commitIntMap{};
        std::array<std::uint16_t, isa::numXmmArchRegs> commitFpMap{};
        std::vector<std::uint64_t> intLastDefSeq;

        std::deque<DynInst> rob; ///< inst/desc re-derived on restore
        std::vector<std::uint64_t> iqSeqs; ///< issue-queue order
        std::deque<StoreEntry> storeQueue;
        unsigned loadsInFlight = 0;

        std::deque<FetchedInst> frontQueue;
        std::uint32_t fetchPc = 0;
        std::uint64_t fetchResumeCycle = 0;

        std::array<FuPool, numFuPools> fuPools{};
        FuPool memPorts;

        std::uint64_t now = 0;
        std::uint64_t nextSeq = 1;
        SimResult result;

        /** Rough heap footprint, for snapshot-cache accounting. */
        std::size_t footprintBytes() const;
    };

    /**
     * Run @p program to completion.
     *
     * @param arith Datapath model (functional when null). The fault
     *        injector passes a gate-netlist-backed model; the IBR
     *        analyser passes an observing model.
     * @param probe Microarchitectural event listener / fault driver.
     * @param predecoded Optional pre-decoded rename metadata for
     *        @p program (see uarch/static_decode.hh). When given,
     *        rename replays the stored StaticInsts instead of
     *        re-deriving them per dynamic instruction — bit-identical
     *        by construction, since both paths call deriveStatic().
     *        Must match @p program instruction-for-instruction; only
     *        borrowed for the duration of this run.
     */
    SimResult run(const isa::TestProgram &program,
                  isa::ArithModel *arith = nullptr,
                  CoreProbe *probe = nullptr,
                  const StaticProgram *predecoded = nullptr);

    /**
     * Run @p program under a composed evaluation session: the
     * session's chained arith model executes and every registered
     * probe observes the same simulation. Equivalent to the
     * pointer-pair overload with (session.arithModel(),
     * session.dispatcher()).
     */
    SimResult
    run(const isa::TestProgram &program, ProbeSet &session,
        const StaticProgram *predecoded = nullptr)
    {
        return run(program, session.arithModel(), session.dispatcher(),
                   predecoded);
    }

    /**
     * Re-initialise all run state for @p program, exactly as run()
     * does before its cycle loop. Public so a recycled Core (the
     * batch evaluator keeps one per arena slot across a whole
     * population) is observably indistinguishable from a fresh one —
     * run() itself performs a full reset, so recycling needs no
     * cooperation from callers; this entry point exists for tests
     * that pin the equivalence (same stateDigest() trajectory).
     */
    void reset(const isa::TestProgram &program);

    /**
     * Retarget this core to @p config; takes effect at the next
     * reset()/run(), which re-derives all state from the config. Used
     * by CoreArena to recycle an instance across callers whose
     * configs differ only in non-structural fields (budget, watchdog).
     */
    void reconfigure(const CoreConfig &config) { cfg = config; }

    /**
     * Capture the complete state of the run in flight. Only
     * meaningful between run()/resumeFrom() setup and run end —
     * in practice, from a probe's onCycleBegin, which fires at the
     * top of every cycle before any stage mutates state.
     */
    Snapshot saveSnapshot() const;

    /**
     * Continue a run from @p snapshot to completion, exactly as the
     * original run would have continued (bit-identical SimResult,
     * proven by tests/uarch/snapshot_test.cpp). @p program must have
     * the same content as the snapshotted run's program; this core
     * must have the same structural CoreConfig (register file, cache
     * geometry, widths). maxCycles and budget may differ — the fault
     * campaign resumes golden snapshots under a faulty-run watchdog.
     */
    SimResult resumeFrom(const Snapshot &snapshot,
                         const isa::TestProgram &program,
                         isa::ArithModel *arith = nullptr,
                         CoreProbe *probe = nullptr);

    /** resumeFrom under a composed evaluation session. */
    SimResult
    resumeFrom(const Snapshot &snapshot, const isa::TestProgram &program,
               ProbeSet &session)
    {
        return resumeFrom(snapshot, program, session.arithModel(),
                          session.dispatcher());
    }

    /**
     * Process-wide count of core simulations started (run() and
     * resumeFrom() both count). Monotonic and thread-safe; benchmarks
     * difference it around a workload to count simulations performed.
     */
    static std::uint64_t simulationsStarted();

    /**
     * Digest of all behaviour-relevant state at the top of the
     * current cycle. Two runs of the same program on the same config
     * whose digests match at the same cycle are in identical live
     * states and therefore (the core being deterministic) produce
     * identical suffixes — the foundation of the fork-injection
     * early exit (DESIGN.md §8). Dead state is excluded so scrubbed
     * faults converge: free physical registers' values, data under
     * invalid cache lines, ready/busy cycles already in the past, and
     * observation-only counters (SimResult statistics, cache hit/miss
     * tallies, intLastDefSeq).
     */
    std::uint64_t stateDigest() const;

    /**
     * Ask the running simulation to stop at the top of the current
     * cycle (callable from a probe's onCycleBegin). The run returns
     * with SimResult::Exit::Stopped and no end-of-run signature.
     */
    void requestStop() { stopRequested = true; }

    // ---- State accessors for probes / fault injection ----
    PhysRegFile &intPrf() { return intRegs; }
    L1Cache &l1d() { return cache; }
    const CoreConfig &config() const { return cfg; }

    /** Current reorder-buffer occupancy (for ACE analysis). */
    std::size_t robOccupancy() const { return rob.size(); }

    /** The in-flight store-queue entries, oldest first. */
    const std::deque<StoreEntry> &
    storeQueueState() const
    {
        return storeQueue;
    }

    const BranchPredictor &
    branchPredictor() const
    {
        return predictor;
    }

    /** The speculative integer rename map (for ACE analysis). */
    const std::array<std::uint16_t, isa::numIntArchRegs> &
    speculativeIntMap() const
    {
        return specIntMap;
    }

    // ---- Fault-site mutators (the per-structure injectors behind
    // the coverage::allStructures() descriptor table; DESIGN.md §14).
    // Each returns false when the sampled site does not currently
    // exist (an empty queue slot, an FP-only destination), which the
    // campaign layer treats as a struck-but-empty fault: the run
    // proceeds unperturbed and classifies as Masked. Every mutated
    // field is restored by Core::Snapshot and covered by
    // stateDigest(), so fork-based injection and digest early-exit
    // work unchanged for these targets. ----

    /** Flip one bit of the destination physical-register tag of ROB
     *  entry @p entry (oldest = 0). The flipped tag is wrapped into
     *  the physical register file, modelling a corrupted rename tag
     *  that makes commit/squash free the wrong register and readers
     *  observe a stale mapping. */
    bool flipRobDestBit(std::uint32_t entry, unsigned bit);

    /** Stuck-at version of flipRobDestBit. */
    bool forceRobDestBit(std::uint32_t entry, unsigned bit, bool value);

    /** Flip one bit of the speculative rename-map entry of integer
     *  architectural register @p arch_reg. */
    bool flipRenameMapBit(std::uint32_t arch_reg, unsigned bit);

    /** Stuck-at version of flipRenameMapBit. */
    bool forceRenameMapBit(std::uint32_t arch_reg, unsigned bit,
                           bool value);

    /** Flip one bit of the buffered store data of store-queue entry
     *  @p entry (oldest = 0); @p bit indexes the 128-bit data field.
     *  Bits beyond the store's width are dead (never drained). */
    bool flipStoreDataBit(std::uint32_t entry, unsigned bit);

    /** Stuck-at version of flipStoreDataBit. */
    bool forceStoreDataBit(std::uint32_t entry, unsigned bit,
                           bool value);

    /** Flip one bit of branch-predictor counter @p slot. */
    bool flipPredictorBit(std::uint32_t slot, unsigned bit);

    /** Stuck-at version of flipPredictorBit. */
    bool forcePredictorBit(std::uint32_t slot, unsigned bit, bool value);

    /** Physical registers of the committed integer mapping (the
     *  architecturally live registers, for end-of-run ACE). */
    const std::array<std::uint16_t, isa::numIntArchRegs> &
    committedIntMap() const
    {
        return commitIntMap;
    }

    /** Per-physical-register sequence number of the last writer
     *  (0 = initial architectural value), for def-use analyses. */
    const std::vector<std::uint64_t> &
    intDefSeqs() const
    {
        return intLastDefSeq;
    }

    std::uint64_t currentCycle() const { return now; }

  private:
    friend class CoreExecContext;

    // Pipeline stages (called newest-to-oldest each cycle).
    void commitStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    /** Cycle loop shared by run() and resumeFrom(). */
    SimResult mainLoop();

    void squashAfter(std::uint64_t seq, std::uint32_t restart_pc);
    bool olderStorePending(std::uint64_t seq) const;
    void finishRun();

    CoreConfig cfg;

    const isa::TestProgram *program = nullptr;
    const StaticProgram *staticProg = nullptr; ///< borrowed, run() only
    isa::Memory memory;
    L1Cache cache;
    PhysRegFile intRegs;
    FpPhysRegFile fpRegs;
    BranchPredictor predictor;
    isa::ArithModel *arithModel = nullptr;
    CoreProbe *probe = nullptr;

    // Rename state.
    std::array<std::uint16_t, isa::numIntArchRegs> specIntMap{};
    std::array<std::uint16_t, isa::numXmmArchRegs> specFpMap{};
    std::array<std::uint16_t, isa::numIntArchRegs> commitIntMap{};
    std::array<std::uint16_t, isa::numXmmArchRegs> commitFpMap{};

    std::vector<std::uint64_t> intLastDefSeq;

    // Windows.
    std::deque<DynInst> rob;
    std::vector<DynInst *> iq;
    std::deque<StoreEntry> storeQueue;
    unsigned loadsInFlight = 0;

    // Frontend.
    std::deque<FetchedInst> frontQueue;
    std::uint32_t fetchPc = 0;
    std::uint64_t fetchResumeCycle = 0;

    // Functional units: per-class issue slots and busy tracking.
    std::array<FuPool, numFuPools> fuPools;
    FuPool memPorts;
    FuPool &poolFor(isa::OpClass cls);
    bool acquireFu(const isa::InstrDesc &desc, std::uint64_t until);

    std::uint64_t now = 0;
    std::uint64_t nextSeq = 1;
    bool running = false;
    bool stopRequested = false;

    SimResult result;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_CORE_HH
