#include "uarch/static_decode.hh"

#include "common/hash.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::uarch
{

namespace
{

std::uint64_t
instContentHash(const isa::Inst &inst)
{
    Fnv1a h;
    h.addWord(inst.descId);
    for (const isa::Operand &op : inst.ops) {
        h.addWord(static_cast<std::uint64_t>(op.kind) |
                  (static_cast<std::uint64_t>(op.reg) << 8) |
                  (static_cast<std::uint64_t>(op.mem.base) << 16) |
                  (static_cast<std::uint64_t>(op.mem.ripRel) << 24));
        h.addWord(static_cast<std::uint64_t>(op.imm));
        h.addWord(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(op.mem.disp)));
    }
    h.addWord(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(inst.branchTarget)));
    return h.value();
}

bool
sameOperand(const isa::Operand &a, const isa::Operand &b)
{
    return a.kind == b.kind && a.reg == b.reg && a.imm == b.imm &&
           a.mem.base == b.mem.base && a.mem.disp == b.mem.disp &&
           a.mem.ripRel == b.mem.ripRel;
}

bool
sameInst(const isa::Inst &a, const isa::Inst &b)
{
    if (a.descId != b.descId || a.branchTarget != b.branchTarget)
        return false;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        if (!sameOperand(a.ops[i], b.ops[i]))
            return false;
    }
    return true;
}

} // namespace

StaticInst
deriveStatic(const isa::Inst &inst, const isa::InstrDesc &desc)
{
    StaticInst si;
    si.desc = &desc;

    auto addIntSrc = [&si](std::uint8_t arch) {
        si.intSrcs[si.numIntSrcs++] = arch;
    };
    auto addDest = [&si](std::uint8_t arch, bool is_fp) {
        si.dests[si.numDests++] = {arch, is_fp};
        if (is_fp)
            ++si.fpDests;
        else
            ++si.intDests;
    };

    for (int i = 0; i < desc.numOperands; ++i) {
        const auto &spec = desc.operands[i];
        const auto &op = inst.ops[i];
        switch (spec.kind) {
          case isa::OperandKind::Gpr:
            if (spec.isRead)
                addIntSrc(op.reg);
            if (spec.isWrite)
                addDest(op.reg, false);
            break;
          case isa::OperandKind::Xmm:
            if (spec.isRead)
                si.fpSrcs[si.numFpSrcs++] = op.reg;
            if (spec.isWrite)
                addDest(op.reg, true);
            break;
          case isa::OperandKind::Mem:
            if (!op.mem.ripRel)
                addIntSrc(op.mem.base);
            break;
          default:
            break;
        }
    }
    for (int i = 0; i < desc.numImplicitReads; ++i)
        addIntSrc(desc.implicitReads[i]);
    if (desc.readsFlags)
        addIntSrc(static_cast<std::uint8_t>(isa::flagsReg));
    for (int i = 0; i < desc.numImplicitWrites; ++i)
        addDest(desc.implicitWrites[i], false);
    if (desc.writesFlags)
        addDest(static_cast<std::uint8_t>(isa::flagsReg), false);

    return si;
}

std::shared_ptr<const StaticProgram>
DecodeCache::build(const isa::TestProgram &program)
{
    auto sp = std::make_shared<StaticProgram>();
    sp->insts.reserve(program.code.size());
    for (const isa::Inst &inst : program.code) {
        const std::uint64_t key = instContentHash(inst);
        std::vector<Entry> &bucket = entries[key];
        const StaticInst *found = nullptr;
        for (const Entry &e : bucket) {
            if (sameInst(e.inst, inst)) {
                found = &e.decoded;
                break;
            }
        }
        if (found) {
            ++hitCount;
            sp->insts.push_back(*found);
        } else {
            ++missCount;
            Entry e;
            e.inst = inst;
            e.decoded =
                deriveStatic(inst, isa::isaTable().desc(inst.descId));
            sp->insts.push_back(e.decoded);
            bucket.push_back(std::move(e));
        }
    }
    return sp;
}

} // namespace harpo::uarch
