/**
 * @file
 * Observation and intervention hooks into the core's bit-holding
 * structures. Coverage analysers (ACE) observe events; the fault
 * injector uses onCycleBegin plus the core's state accessors to flip
 * or force bits at precise cycles.
 *
 * Datapath-level observation composes with these hooks: a recorder
 * that needs both the exact operands delivered to a functional unit
 * and the cycle they arrived implements ArithModel (the operands) and
 * CoreProbe (onCycleBegin for the timestamp) on one object — see
 * faultsim::FuTraceRecorder, which feeds the bit-parallel gate-fault
 * replay path.
 */

#ifndef HARPOCRATES_UARCH_PROBES_HH
#define HARPOCRATES_UARCH_PROBES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "isa/arith_model.hh"

namespace harpo::uarch
{

class Core;

/** Dataflow summary of one executed instruction, for probes that
 *  build dynamic def-use graphs (true-liveness ACE analysis). */
struct ExecInfo
{
    std::uint64_t seq = 0;
    std::uint64_t cycle = 0;
    bool isStore = false;
    bool isBranch = false;
    bool faulted = false;

    struct SrcRead
    {
        std::uint16_t phys = 0;
        std::uint64_t defSeq = 0; ///< seq of the producing instruction
        std::uint8_t liveBits = 64;
    };
    std::array<SrcRead, 6> srcs{};
    int numSrcs = 0;

    struct DefWrite
    {
        std::uint16_t phys = 0;
        std::uint8_t arch = 0;
    };
    std::array<DefWrite, 5> defs{};
    int numDefs = 0;
};

/** Listener for microarchitectural events. All methods default to
 *  no-ops so implementations override only what they need. */
class CoreProbe
{
  public:
    virtual ~CoreProbe() = default;

    /** Called at the start of every simulated cycle. */
    virtual void
    onCycleBegin(Core &core, std::uint64_t cycle)
    {
        (void)core;
        (void)cycle;
    }

    /** A physical integer register was read by an executing
     *  instruction. @p live_bits is the core's estimate of how many
     *  of the 64 stored bits the consumer can architecturally
     *  propagate (5 for flag reads, 6 for compare sources whose only
     *  product is flags, the operand width otherwise) — the
     *  first-order approximation of bit-level ACE liveness. */
    virtual void
    onIntRegRead(unsigned phys_reg, unsigned live_bits,
                 std::uint64_t cycle)
    {
        (void)phys_reg;
        (void)live_bits;
        (void)cycle;
    }

    /** A physical integer register was written. */
    virtual void
    onIntRegWrite(unsigned phys_reg, unsigned arch_reg,
                  std::uint64_t cycle)
    {
        (void)phys_reg;
        (void)arch_reg;
        (void)cycle;
    }

    /** Bytes [index, index+len) of the L1D data array were read. */
    virtual void
    onCacheRead(std::uint32_t data_index, unsigned len,
                std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)cycle;
    }

    /** Bytes [index, index+len) of the L1D data array were written
     *  (by a store or a line fill). */
    virtual void
    onCacheWrite(std::uint32_t data_index, unsigned len,
                 std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)cycle;
    }

    /** A line's worth of data-array bytes was evicted. When @p dirty,
     *  the bytes flowed back to memory (architecturally live). */
    virtual void
    onCacheEvict(std::uint32_t data_index, unsigned len, bool dirty,
                 std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)dirty;
        (void)cycle;
    }

    /** The speculative rename map entry of integer architectural
     *  register @p arch_reg was read (a consumer was renamed through
     *  it). */
    virtual void
    onRenameRead(unsigned arch_reg, std::uint64_t cycle)
    {
        (void)arch_reg;
        (void)cycle;
    }

    /** The speculative rename map entry of integer architectural
     *  register @p arch_reg was overwritten (a new producer was
     *  renamed, or a squash restored the previous mapping). */
    virtual void
    onRenameWrite(unsigned arch_reg, std::uint64_t cycle)
    {
        (void)arch_reg;
        (void)cycle;
    }

    /** The branch predictor was consulted for the conditional branch
     *  at @p pc (its counter steered fetch). */
    virtual void
    onBpLookup(std::uint64_t pc, std::uint64_t cycle)
    {
        (void)pc;
        (void)cycle;
    }

    /** The branch predictor counter for @p pc was trained with a
     *  resolved direction (overwrite of predictor state). */
    virtual void
    onBpUpdate(std::uint64_t pc, std::uint64_t cycle)
    {
        (void)pc;
        (void)cycle;
    }

    /** An instruction finished executing (possibly on the wrong
     *  path); @p info summarises its register dataflow. */
    virtual void
    onInstExecuted(const ExecInfo &info)
    {
        (void)info;
    }

    /** An instruction committed (it is architecturally real). */
    virtual void
    onInstCommitted(std::uint64_t seq)
    {
        (void)seq;
    }

    /** End of run: @p core exposes the final live register mapping. */
    virtual void
    onRunEnd(Core &core, std::uint64_t cycle)
    {
        (void)core;
        (void)cycle;
    }
};

/**
 * A composable evaluation session: any number of CoreProbes plus a
 * chain of observing ArithModels over one executing model, attached to
 * a single simulation.
 *
 * Probes are pure observers, so fanning N of them out over one run is
 * behaviourally identical to N separate runs with one probe each
 * (DESIGN.md §9). Every hook is forwarded to the registered probes in
 * registration order. Arith-model observers (ChainedArithModel) are
 * stacked over the executing model with chain(); each observer
 * forwards values unchanged, so the core computes with the innermost
 * model regardless of how many observers watch it.
 *
 * Usage:
 *     ProbeSet session;
 *     session.model(&faultyModel);     // executing model (optional)
 *     session.chain(ibr);              // observers, innermost first
 *     session.add(&trueAce);
 *     session.add(&cacheAce);
 *     core.run(program, session);
 */
class ProbeSet final : public CoreProbe
{
  public:
    /** Register a probe. Null is tolerated (no-op) so callers can
     *  pass through optional probes unconditionally. */
    void
    add(CoreProbe *p)
    {
        if (p)
            probes_.push_back(p);
    }

    /** Set the *executing* model at the bottom of the chain (fault
     *  netlists, or null for the functional model). Must be called
     *  before any chain() — observers capture the head at chain time. */
    void
    model(isa::ArithModel *executing)
    {
        panicIf(chained_, "ProbeSet::model after chain — set the "
                          "executing model before stacking observers");
        head_ = executing;
    }

    /** Stack an observing model over the current chain head. The
     *  observer is rebased onto the head and becomes the new head. */
    void
    chain(isa::ChainedArithModel &observer)
    {
        observer.rebase(head_);
        head_ = &observer;
        chained_ = true;
    }

    /** The model the core should execute with (null = functional). */
    isa::ArithModel *arithModel() const { return head_; }

    /** The probe the core should notify: null when no probes are
     *  registered, the probe itself when there is exactly one (no
     *  dispatch overhead), this fan-out otherwise. */
    CoreProbe *
    dispatcher()
    {
        if (probes_.empty())
            return nullptr;
        if (probes_.size() == 1)
            return probes_.front();
        return this;
    }

    std::size_t numProbes() const { return probes_.size(); }

    /** Detach everything — probes and the model chain — so one
     *  ProbeSet can be rebuilt per program without reallocating its
     *  probe list (the batch evaluator recycles sessions across a
     *  whole population). Registered probes are not owned and not
     *  reset; re-chain observers after clearing (chain() rebinds the
     *  observer's base each time). */
    void
    clear()
    {
        probes_.clear();
        head_ = nullptr;
        chained_ = false;
    }

    // ---- Fan-out: forward every hook in registration order ----
    void
    onCycleBegin(Core &core, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onCycleBegin(core, cycle);
    }

    void
    onIntRegRead(unsigned phys_reg, unsigned live_bits,
                 std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onIntRegRead(phys_reg, live_bits, cycle);
    }

    void
    onIntRegWrite(unsigned phys_reg, unsigned arch_reg,
                  std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onIntRegWrite(phys_reg, arch_reg, cycle);
    }

    void
    onCacheRead(std::uint32_t data_index, unsigned len,
                std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onCacheRead(data_index, len, cycle);
    }

    void
    onCacheWrite(std::uint32_t data_index, unsigned len,
                 std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onCacheWrite(data_index, len, cycle);
    }

    void
    onCacheEvict(std::uint32_t data_index, unsigned len, bool dirty,
                 std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onCacheEvict(data_index, len, dirty, cycle);
    }

    void
    onRenameRead(unsigned arch_reg, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onRenameRead(arch_reg, cycle);
    }

    void
    onRenameWrite(unsigned arch_reg, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onRenameWrite(arch_reg, cycle);
    }

    void
    onBpLookup(std::uint64_t pc, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onBpLookup(pc, cycle);
    }

    void
    onBpUpdate(std::uint64_t pc, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onBpUpdate(pc, cycle);
    }

    void
    onInstExecuted(const ExecInfo &info) override
    {
        for (CoreProbe *p : probes_)
            p->onInstExecuted(info);
    }

    void
    onInstCommitted(std::uint64_t seq) override
    {
        for (CoreProbe *p : probes_)
            p->onInstCommitted(seq);
    }

    void
    onRunEnd(Core &core, std::uint64_t cycle) override
    {
        for (CoreProbe *p : probes_)
            p->onRunEnd(core, cycle);
    }

  private:
    std::vector<CoreProbe *> probes_;
    isa::ArithModel *head_ = nullptr;
    bool chained_ = false;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_PROBES_HH
