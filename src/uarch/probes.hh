/**
 * @file
 * Observation and intervention hooks into the core's bit-holding
 * structures. Coverage analysers (ACE) observe events; the fault
 * injector uses onCycleBegin plus the core's state accessors to flip
 * or force bits at precise cycles.
 *
 * Datapath-level observation composes with these hooks: a recorder
 * that needs both the exact operands delivered to a functional unit
 * and the cycle they arrived implements ArithModel (the operands) and
 * CoreProbe (onCycleBegin for the timestamp) on one object — see
 * faultsim::FuTraceRecorder, which feeds the bit-parallel gate-fault
 * replay path.
 */

#ifndef HARPOCRATES_UARCH_PROBES_HH
#define HARPOCRATES_UARCH_PROBES_HH

#include <array>
#include <cstdint>

namespace harpo::uarch
{

class Core;

/** Dataflow summary of one executed instruction, for probes that
 *  build dynamic def-use graphs (true-liveness ACE analysis). */
struct ExecInfo
{
    std::uint64_t seq = 0;
    std::uint64_t cycle = 0;
    bool isStore = false;
    bool isBranch = false;
    bool faulted = false;

    struct SrcRead
    {
        std::uint16_t phys = 0;
        std::uint64_t defSeq = 0; ///< seq of the producing instruction
        std::uint8_t liveBits = 64;
    };
    std::array<SrcRead, 6> srcs{};
    int numSrcs = 0;

    struct DefWrite
    {
        std::uint16_t phys = 0;
        std::uint8_t arch = 0;
    };
    std::array<DefWrite, 5> defs{};
    int numDefs = 0;
};

/** Listener for microarchitectural events. All methods default to
 *  no-ops so implementations override only what they need. */
class CoreProbe
{
  public:
    virtual ~CoreProbe() = default;

    /** Called at the start of every simulated cycle. */
    virtual void
    onCycleBegin(Core &core, std::uint64_t cycle)
    {
        (void)core;
        (void)cycle;
    }

    /** A physical integer register was read by an executing
     *  instruction. @p live_bits is the core's estimate of how many
     *  of the 64 stored bits the consumer can architecturally
     *  propagate (5 for flag reads, 6 for compare sources whose only
     *  product is flags, the operand width otherwise) — the
     *  first-order approximation of bit-level ACE liveness. */
    virtual void
    onIntRegRead(unsigned phys_reg, unsigned live_bits,
                 std::uint64_t cycle)
    {
        (void)phys_reg;
        (void)live_bits;
        (void)cycle;
    }

    /** A physical integer register was written. */
    virtual void
    onIntRegWrite(unsigned phys_reg, unsigned arch_reg,
                  std::uint64_t cycle)
    {
        (void)phys_reg;
        (void)arch_reg;
        (void)cycle;
    }

    /** Bytes [index, index+len) of the L1D data array were read. */
    virtual void
    onCacheRead(std::uint32_t data_index, unsigned len,
                std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)cycle;
    }

    /** Bytes [index, index+len) of the L1D data array were written
     *  (by a store or a line fill). */
    virtual void
    onCacheWrite(std::uint32_t data_index, unsigned len,
                 std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)cycle;
    }

    /** A line's worth of data-array bytes was evicted. When @p dirty,
     *  the bytes flowed back to memory (architecturally live). */
    virtual void
    onCacheEvict(std::uint32_t data_index, unsigned len, bool dirty,
                 std::uint64_t cycle)
    {
        (void)data_index;
        (void)len;
        (void)dirty;
        (void)cycle;
    }

    /** An instruction finished executing (possibly on the wrong
     *  path); @p info summarises its register dataflow. */
    virtual void
    onInstExecuted(const ExecInfo &info)
    {
        (void)info;
    }

    /** An instruction committed (it is architecturally real). */
    virtual void
    onInstCommitted(std::uint64_t seq)
    {
        (void)seq;
    }

    /** End of run: @p core exposes the final live register mapping. */
    virtual void
    onRunEnd(Core &core, std::uint64_t cycle)
    {
        (void)core;
        (void)cycle;
    }
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_PROBES_HH
