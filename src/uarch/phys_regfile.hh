/**
 * @file
 * Physical register files with real bit-level content. The integer PRF
 * is one of the paper's six fault targets: transient faults are
 * injected by flipping bits of these storage words mid-run.
 */

#ifndef HARPOCRATES_UARCH_PHYS_REGFILE_HH
#define HARPOCRATES_UARCH_PHYS_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace harpo::uarch
{

/** 64-bit-entry physical register file with a free list. */
class PhysRegFile
{
  public:
    static constexpr std::uint64_t pendingReady = ~0ull;

    explicit PhysRegFile(unsigned num_regs = 0) { reset(num_regs); }

    void
    reset(unsigned num_regs)
    {
        values.assign(num_regs, 0);
        readyCycle.assign(num_regs, 0);
        freeList.clear();
        // Allocate from low indices first for reproducibility.
        for (unsigned i = num_regs; i-- > 0;)
            freeList.push_back(i);
    }

    unsigned size() const { return static_cast<unsigned>(values.size()); }

    bool hasFree() const { return !freeList.empty(); }

    std::size_t numFree() const { return freeList.size(); }

    /** Allocate a register; it is initially not ready. */
    unsigned
    alloc()
    {
        panicIf(freeList.empty(), "PhysRegFile: out of registers");
        const unsigned reg = freeList.back();
        freeList.pop_back();
        readyCycle[reg] = pendingReady;
        return reg;
    }

    void
    free(unsigned reg)
    {
        freeList.push_back(reg);
    }

    std::uint64_t read(unsigned reg) const { return values[reg]; }
    void write(unsigned reg, std::uint64_t v) { values[reg] = v; }

    /** Flip one stored bit (transient fault injection). */
    void
    flipBit(unsigned reg, unsigned bit)
    {
        values[reg] ^= 1ull << bit;
    }

    /** Force one stored bit (permanent / intermittent stuck-at). */
    void
    forceBit(unsigned reg, unsigned bit, bool value)
    {
        if (value)
            values[reg] |= 1ull << bit;
        else
            values[reg] &= ~(1ull << bit);
    }

    bool
    isReady(unsigned reg, std::uint64_t cycle) const
    {
        return readyCycle[reg] <= cycle;
    }

    void
    setReadyAt(unsigned reg, std::uint64_t cycle)
    {
        readyCycle[reg] = cycle;
    }

    /** Mark ready immediately (initial architectural values). */
    void markReadyNow(unsigned reg) { readyCycle[reg] = 0; }

    /**
     * Mix all behaviour-relevant register state at cycle @p now into
     * @p hasher. Free registers contribute only their membership and
     * allocation order: their values and ready cycles are dead (alloc
     * re-marks a register pending, and its producer rewrites the value
     * before any consumer can pass the readiness check), so excluding
     * them lets a faulty run whose flipped register was free converge
     * with the golden digest. Ready cycles in the past collapse to 0 —
     * only "when does it *become* ready" can influence the future.
     */
    template <typename Hasher>
    void
    hashLiveState(Hasher &hasher, std::uint64_t now) const
    {
        std::vector<std::uint64_t> freeMask((values.size() + 63) / 64);
        for (const unsigned reg : freeList)
            freeMask[reg / 64] |= 1ull << (reg % 64);
        for (std::size_t reg = 0; reg < values.size(); ++reg) {
            if ((freeMask[reg / 64] >> (reg % 64)) & 1)
                continue;
            hasher.addWord(values[reg]);
            hasher.addWord(readyCycle[reg] > now ? readyCycle[reg] : 0);
        }
        for (const std::uint64_t word : freeMask)
            hasher.addWord(word);
        for (const unsigned reg : freeList)
            hasher.addWord(reg);
    }

  private:
    std::vector<std::uint64_t> values;
    std::vector<std::uint64_t> readyCycle;
    std::vector<unsigned> freeList;
};

/** 128-bit-entry register file for the XMM architectural state. */
class FpPhysRegFile
{
  public:
    static constexpr std::uint64_t pendingReady = ~0ull;

    explicit FpPhysRegFile(unsigned num_regs = 0) { reset(num_regs); }

    void
    reset(unsigned num_regs)
    {
        values.assign(num_regs * 2, 0);
        readyCycle.assign(num_regs, 0);
        freeList.clear();
        for (unsigned i = num_regs; i-- > 0;)
            freeList.push_back(i);
    }

    unsigned
    size() const
    {
        return static_cast<unsigned>(readyCycle.size());
    }

    bool hasFree() const { return !freeList.empty(); }

    std::size_t numFree() const { return freeList.size(); }

    unsigned
    alloc()
    {
        panicIf(freeList.empty(), "FpPhysRegFile: out of registers");
        const unsigned reg = freeList.back();
        freeList.pop_back();
        readyCycle[reg] = pendingReady;
        return reg;
    }

    void free(unsigned reg) { freeList.push_back(reg); }

    void
    read(unsigned reg, std::uint64_t out[2]) const
    {
        out[0] = values[reg * 2];
        out[1] = values[reg * 2 + 1];
    }

    void
    write(unsigned reg, const std::uint64_t v[2])
    {
        values[reg * 2] = v[0];
        values[reg * 2 + 1] = v[1];
    }

    bool
    isReady(unsigned reg, std::uint64_t cycle) const
    {
        return readyCycle[reg] <= cycle;
    }

    void
    setReadyAt(unsigned reg, std::uint64_t cycle)
    {
        readyCycle[reg] = cycle;
    }

    void markReadyNow(unsigned reg) { readyCycle[reg] = 0; }

    /** Same live-state contract as PhysRegFile::hashLiveState. */
    template <typename Hasher>
    void
    hashLiveState(Hasher &hasher, std::uint64_t now) const
    {
        std::vector<std::uint64_t> freeMask((readyCycle.size() + 63) /
                                            64);
        for (const unsigned reg : freeList)
            freeMask[reg / 64] |= 1ull << (reg % 64);
        for (std::size_t reg = 0; reg < readyCycle.size(); ++reg) {
            if ((freeMask[reg / 64] >> (reg % 64)) & 1)
                continue;
            hasher.addWord(values[reg * 2]);
            hasher.addWord(values[reg * 2 + 1]);
            hasher.addWord(readyCycle[reg] > now ? readyCycle[reg] : 0);
        }
        for (const std::uint64_t word : freeMask)
            hasher.addWord(word);
        for (const unsigned reg : freeList)
            hasher.addWord(reg);
    }

  private:
    std::vector<std::uint64_t> values;
    std::vector<std::uint64_t> readyCycle;
    std::vector<unsigned> freeList;
};

} // namespace harpo::uarch

#endif // HARPOCRATES_UARCH_PHYS_REGFILE_HH
