#include "coverage/measure.hh"

#include <cstring>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace harpo::coverage
{

const std::array<StructureInfo, numTargetStructures> &
allStructures()
{
    static const std::array<StructureInfo, numTargetStructures> table{{
        {TargetStructure::IntRegFile, "IRF", isa::FuCircuit::None, true},
        {TargetStructure::L1DCache, "L1D", isa::FuCircuit::None, true},
        {TargetStructure::IntAdder, "IntAdder", isa::FuCircuit::IntAdd,
         false},
        {TargetStructure::IntMultiplier, "IntMultiplier",
         isa::FuCircuit::IntMul, false},
        {TargetStructure::FpAdder, "SSE-FP-Adder", isa::FuCircuit::FpAdd,
         false},
        {TargetStructure::FpMultiplier, "SSE-FP-Multiplier",
         isa::FuCircuit::FpMul, false},
    }};
    return table;
}

namespace
{

const StructureInfo &
infoFor(TargetStructure target)
{
    const auto idx = static_cast<std::size_t>(target);
    panicIf(idx >= numTargetStructures,
            "invalid TargetStructure enum value");
    const StructureInfo &info = allStructures()[idx];
    panicIf(info.target != target,
            "structure descriptor table out of order");
    return info;
}

} // namespace

const char *
structureName(TargetStructure target)
{
    return infoFor(target).name;
}

std::optional<TargetStructure>
parseStructure(const char *name)
{
    if (!name)
        return std::nullopt;
    for (const StructureInfo &info : allStructures()) {
        if (std::strcmp(info.name, name) == 0)
            return info.target;
    }
    return std::nullopt;
}

isa::FuCircuit
circuitFor(TargetStructure target)
{
    return infoFor(target).circuit;
}

bool
isBitArray(TargetStructure target)
{
    return infoFor(target).bitArray;
}

CoverageVector
CoverageSession::extract(const uarch::SimResult &sim) const
{
    CoverageVector result;
    result.sim = sim;
    if (sim.exit != uarch::SimResult::Exit::Finished)
        return result; // all-zero coverage: unusable test program

    for (const StructureInfo &info : allStructures()) {
        const auto idx = static_cast<std::size_t>(info.target);
        if (info.target == TargetStructure::IntRegFile)
            result.coverage[idx] = irfAce.coverage();
        else if (info.target == TargetStructure::L1DCache)
            result.coverage[idx] = l1dAce.coverage();
        else
            result.coverage[idx] = ibr.ibr(info.circuit, sim.cycles);
    }
    return result;
}

CoverageVector
measureAllCoverage(const isa::TestProgram &program,
                   const uarch::CoreConfig &config)
{
    HARPO_TRACE_SPAN("measure_all", "coverage");
    static const telemetry::MetricId sessions =
        telemetry::MetricsRegistry::instance().counter(
            "coverage.sessions");
    telemetry::count(sessions);

    uarch::Core core(config);
    CoverageSession cov;
    uarch::ProbeSet session;
    cov.attach(session);
    return cov.extract(core.run(program, session));
}

CoverageResult
measureCoverage(const isa::TestProgram &program, TargetStructure target,
                const uarch::CoreConfig &config)
{
    const CoverageVector all = measureAllCoverage(program, config);
    return CoverageResult{all[target], all.sim};
}

} // namespace harpo::coverage
