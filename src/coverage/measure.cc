#include "coverage/measure.hh"

#include <cstring>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace harpo::coverage
{

namespace
{

/** Bits needed to address @p count items (site width of the
 *  physical-register tags stored in the ROB and the rename map). */
std::uint32_t
indexBits(std::uint32_t count)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < count)
        ++bits;
    return bits == 0 ? 1 : bits;
}

std::unique_ptr<StructureAnalyzer>
makeTrueAce()
{
    return std::make_unique<TrueAceAnalyzer>();
}

std::unique_ptr<StructureAnalyzer>
makeCacheAce()
{
    return std::make_unique<CacheAceAnalyzer>();
}

std::unique_ptr<StructureAnalyzer>
makeRobAce()
{
    return std::make_unique<RobAceAnalyzer>();
}

std::unique_ptr<StructureAnalyzer>
makeRenameMapAce()
{
    return std::make_unique<RenameMapAceAnalyzer>();
}

std::unique_ptr<StructureAnalyzer>
makeStoreQueueAce()
{
    return std::make_unique<StoreQueueAceAnalyzer>();
}

std::unique_ptr<StructureAnalyzer>
makeBpAce()
{
    return std::make_unique<BpAceAnalyzer>();
}

} // namespace

const std::array<StructureInfo, numTargetStructures> &
allStructures()
{
    using uarch::Core;
    using uarch::CoreConfig;
    static const std::array<StructureInfo, numTargetStructures> table{{
        {TargetStructure::IntRegFile, "IRF", isa::FuCircuit::None, true,
         SiteKind::BitArray,
         [](const CoreConfig &c) {
             return SiteGeometry{c.numIntPhysRegs, 64};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             c.intPrf().flipBit(loc, bit);
             return true;
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             c.intPrf().forceBit(loc, bit, v);
             return true;
         },
         &makeTrueAce},
        {TargetStructure::L1DCache, "L1D", isa::FuCircuit::None, true,
         SiteKind::BitArray,
         [](const CoreConfig &c) {
             return SiteGeometry{c.l1d.size, 8};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             c.l1d().flipBit(loc, bit);
             return true;
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             c.l1d().forceBit(loc, bit, v);
             return true;
         },
         &makeCacheAce},
        {TargetStructure::IntAdder, "IntAdder", isa::FuCircuit::IntAdd,
         false, SiteKind::FunctionalUnit, nullptr, nullptr, nullptr,
         nullptr},
        {TargetStructure::IntMultiplier, "IntMultiplier",
         isa::FuCircuit::IntMul, false, SiteKind::FunctionalUnit,
         nullptr, nullptr, nullptr, nullptr},
        {TargetStructure::FpAdder, "SSE-FP-Adder", isa::FuCircuit::FpAdd,
         false, SiteKind::FunctionalUnit, nullptr, nullptr, nullptr,
         nullptr},
        {TargetStructure::FpMultiplier, "SSE-FP-Multiplier",
         isa::FuCircuit::FpMul, false, SiteKind::FunctionalUnit,
         nullptr, nullptr, nullptr, nullptr},
        {TargetStructure::Rob, "ROB", isa::FuCircuit::None, true,
         SiteKind::QueueEntries,
         [](const CoreConfig &c) {
             return SiteGeometry{c.robSize,
                                 indexBits(c.numIntPhysRegs)};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             return c.flipRobDestBit(loc, bit);
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             return c.forceRobDestBit(loc, bit, v);
         },
         &makeRobAce},
        {TargetStructure::RenameMap, "RenameMap", isa::FuCircuit::None,
         true, SiteKind::TableEntries,
         [](const CoreConfig &c) {
             return SiteGeometry{
                 static_cast<std::uint32_t>(isa::numIntArchRegs),
                 indexBits(c.numIntPhysRegs)};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             return c.flipRenameMapBit(loc, bit);
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             return c.forceRenameMapBit(loc, bit, v);
         },
         &makeRenameMapAce},
        {TargetStructure::StoreQueue, "StoreQueue", isa::FuCircuit::None,
         true, SiteKind::QueueEntries,
         [](const CoreConfig &c) {
             return SiteGeometry{
                 c.sqSize,
                 StoreQueueAceAnalyzer::bytesPerEntry * 8};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             return c.flipStoreDataBit(loc, bit);
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             return c.forceStoreDataBit(loc, bit, v);
         },
         &makeStoreQueueAce},
        {TargetStructure::BranchPredictor, "BranchPredictor",
         isa::FuCircuit::None, true, SiteKind::TableEntries,
         [](const CoreConfig &) {
             return SiteGeometry{
                 static_cast<std::uint32_t>(
                     uarch::BranchPredictor::defaultTableSize),
                 2};
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit) {
             return c.flipPredictorBit(loc, bit);
         },
         [](Core &c, std::uint32_t loc, std::uint8_t bit, bool v) {
             return c.forcePredictorBit(loc, bit, v);
         },
         &makeBpAce},
    }};
    return table;
}

const StructureInfo &
structureInfo(TargetStructure target)
{
    const auto idx = static_cast<std::size_t>(target);
    panicIf(idx >= numTargetStructures,
            "invalid TargetStructure enum value");
    const StructureInfo &info = allStructures()[idx];
    panicIf(info.target != target,
            "structure descriptor table out of order");
    return info;
}

const char *
structureName(TargetStructure target)
{
    return structureInfo(target).name;
}

std::optional<TargetStructure>
parseStructure(const char *name)
{
    if (!name)
        return std::nullopt;
    for (const StructureInfo &info : allStructures()) {
        if (std::strcmp(info.name, name) == 0)
            return info.target;
    }
    return std::nullopt;
}

isa::FuCircuit
circuitFor(TargetStructure target)
{
    return structureInfo(target).circuit;
}

bool
isBitArray(TargetStructure target)
{
    return structureInfo(target).bitArray;
}

CoverageSession::CoverageSession()
{
    for (const StructureInfo &info : allStructures()) {
        if (info.makeAnalyzer) {
            analyzers[static_cast<std::size_t>(info.target)] =
                info.makeAnalyzer();
        }
    }
}

void
CoverageSession::attach(uarch::ProbeSet &session)
{
    session.chain(ibr);
    attachAnalyzers(session);
}

void
CoverageSession::attachAnalyzers(uarch::ProbeSet &session)
{
    // Table order, so probe fan-out order is deterministic.
    for (const StructureInfo &info : allStructures()) {
        if (auto &a = analyzers[static_cast<std::size_t>(info.target)])
            session.add(a.get());
    }
}

double
CoverageSession::storageCoverage(TargetStructure target) const
{
    const auto &analyzer = analyzers[static_cast<std::size_t>(target)];
    panicIf(!analyzer, "storageCoverage: no analyser for a "
                       "functional-unit target");
    return analyzer->coverage();
}

void
CoverageSession::reset()
{
    for (auto &analyzer : analyzers) {
        if (analyzer)
            analyzer->reset();
    }
    ibr.reset();
}

CoverageVector
CoverageSession::extract(const uarch::SimResult &sim) const
{
    CoverageVector result;
    result.sim = sim;
    if (sim.exit != uarch::SimResult::Exit::Finished)
        return result; // all-zero coverage: unusable test program

    for (const StructureInfo &info : allStructures()) {
        const auto idx = static_cast<std::size_t>(info.target);
        if (analyzers[idx])
            result.coverage[idx] = analyzers[idx]->coverage();
        else
            result.coverage[idx] = ibr.ibr(info.circuit, sim.cycles);
    }
    return result;
}

CoverageVector
measureAllCoverage(const isa::TestProgram &program,
                   const uarch::CoreConfig &config)
{
    HARPO_TRACE_SPAN("measure_all", "coverage");
    static const telemetry::MetricId sessions =
        telemetry::MetricsRegistry::instance().counter(
            "coverage.sessions");
    telemetry::count(sessions);

    uarch::Core core(config);
    CoverageSession cov;
    uarch::ProbeSet session;
    cov.attach(session);
    return cov.extract(core.run(program, session));
}

CoverageResult
measureCoverage(const isa::TestProgram &program, TargetStructure target,
                const uarch::CoreConfig &config)
{
    const CoverageVector all = measureAllCoverage(program, config);
    return CoverageResult{all[target], all.sim};
}

} // namespace harpo::coverage
