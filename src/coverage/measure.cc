#include "coverage/measure.hh"

#include "common/logging.hh"
#include "coverage/ace.hh"
#include "coverage/ibr.hh"
#include "coverage/true_ace.hh"

namespace harpo::coverage
{

const char *
structureName(TargetStructure target)
{
    switch (target) {
      case TargetStructure::IntRegFile: return "IRF";
      case TargetStructure::L1DCache: return "L1D";
      case TargetStructure::IntAdder: return "IntAdder";
      case TargetStructure::IntMultiplier: return "IntMultiplier";
      case TargetStructure::FpAdder: return "SSE-FP-Adder";
      case TargetStructure::FpMultiplier: return "SSE-FP-Multiplier";
    }
    return "?";
}

isa::FuCircuit
circuitFor(TargetStructure target)
{
    switch (target) {
      case TargetStructure::IntAdder: return isa::FuCircuit::IntAdd;
      case TargetStructure::IntMultiplier: return isa::FuCircuit::IntMul;
      case TargetStructure::FpAdder: return isa::FuCircuit::FpAdd;
      case TargetStructure::FpMultiplier: return isa::FuCircuit::FpMul;
      default: return isa::FuCircuit::None;
    }
}

bool
isBitArray(TargetStructure target)
{
    return target == TargetStructure::IntRegFile ||
           target == TargetStructure::L1DCache;
}

CoverageResult
measureCoverage(const isa::TestProgram &program, TargetStructure target,
                const uarch::CoreConfig &config)
{
    CoverageResult result;
    uarch::Core core(config);

    switch (target) {
      case TargetStructure::IntRegFile: {
        // Liveness-refined ACE: only bits that transitively reach an
        // architectural output count (see true_ace.hh).
        TrueAceAnalyzer ace;
        result.sim = core.run(program, nullptr, &ace);
        result.coverage = ace.coverage();
        break;
      }
      case TargetStructure::L1DCache: {
        CacheAceAnalyzer ace;
        result.sim = core.run(program, nullptr, &ace);
        result.coverage = ace.coverage();
        break;
      }
      default: {
        IbrArithModel ibr;
        result.sim = core.run(program, &ibr, nullptr);
        result.coverage =
            ibr.ibr(circuitFor(target), result.sim.cycles);
        break;
      }
    }

    if (result.sim.exit != uarch::SimResult::Exit::Finished)
        result.coverage = 0.0;
    return result;
}

} // namespace harpo::coverage
