/**
 * @file
 * Batch evaluation of a whole generation of test programs.
 *
 * The evolution loop's grading step (paper step 1) used to treat each
 * program as an isolated job: construct a Core, decode every
 * instruction at rename, fold IBR per functional-unit invocation,
 * destroy everything, repeat. GenerationEvaluator restructures the
 * step around three reuse layers:
 *
 *  1. Shared pre-decoded programs — a content-hashed DecodeCache
 *     (uarch/static_decode.hh) derives each distinct program's rename
 *     metadata once; re-synthesized elites hit the cache. A result
 *     cache keyed by the same content hash goes further and skips the
 *     simulation entirely for programs graded before on this config.
 *
 *  2. Recycled Core state — a CoreArena (uarch/core_arena.hh) hands
 *     out leased Cores whose allocations (and provably-dead cache
 *     bytes) survive between programs, and a workspace pool recycles
 *     the per-run coverage analysers the same way.
 *
 *  3. Lane-parallel IBR grading — runs record raw operand pairs
 *     (LaneIbrRecorder) and a post-pass grades up to 64 programs per
 *     sweep through the bit-sliced reduction of coverage/lane_ibr.hh.
 *
 * Every layer is behaviour-preserving: evaluate() returns exit
 * status, cycle counts and coverage bit-identical to calling
 * measureAllCoverage() per program (pinned by
 * tests/coverage/batch_eval_test.cpp and the multi-target bench's
 * identity gate; the soundness argument is DESIGN.md §12). The one
 * deliberate difference: SimResult::signature is 0 in every returned
 * vector. The signature hashes all of architectural memory — nearly
 * half of a short run's cost — and exists for golden-vs-faulty SDC
 * comparison in fault campaigns; grading consumes only fitness and
 * coverage, so the batch path runs with CoreConfig::runSignature off.
 * Anything that needs signatures (FaultCampaign::acquireGolden, the
 * detection sampler) keeps its own signature-bearing runs.
 * Budget semantics also match the scalar path: the budget is polled
 * before each program and an expired budget raises Error::budget,
 * mid-batch, exactly like the loop's per-program evaluator.
 */

#ifndef HARPOCRATES_COVERAGE_BATCH_EVAL_HH
#define HARPOCRATES_COVERAGE_BATCH_EVAL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "coverage/lane_ibr.hh"
#include "coverage/measure.hh"
#include "uarch/core_arena.hh"
#include "uarch/static_decode.hh"

namespace harpo::coverage
{

/** Cumulative reuse counters of one GenerationEvaluator (mirrored
 *  into the telemetry registry per batch). */
struct BatchStats
{
    std::uint64_t programs = 0;      ///< programs graded (incl. hits)
    std::uint64_t evalCacheHits = 0; ///< simulations skipped entirely
    std::uint64_t decodeHits = 0;    ///< pre-decode cache hits
    std::uint64_t decodeMisses = 0;  ///< distinct programs decoded
    std::uint64_t arenaReuses = 0;   ///< Cores recycled, not built
    std::uint64_t laneSweeps = 0;    ///< 64-lane IBR reduction passes
    std::uint64_t lanesFilled = 0;   ///< operand pairs graded in lanes
    std::uint64_t simCycles = 0;     ///< cycles actually simulated
    std::uint64_t cachedCycles = 0;  ///< cycles saved by result-cache hits
};

/** Per-program grading cost, for credit assignment by the adaptive
 *  search layer. `cycles` is the program's simulated cycle count
 *  whether or not this call simulated it — a cache hit still reports
 *  the cost the program *would* charge, so operators that rediscover
 *  cached duplicates are not rewarded with artificially free grading.
 *  `cached` distinguishes the two for accounting. */
struct EvalCost
{
    std::uint64_t cycles = 0;
    bool cached = false;
};

/**
 * Reusable batch evaluator bound to one core configuration. Create it
 * once and feed it successive generations; all three reuse layers
 * accumulate across calls (that is where the elite-re-evaluation and
 * arena wins come from). Thread-safe internally — evaluate() may fan
 * its per-program work across the global ThreadPool — but evaluate()
 * itself must not be called concurrently on one instance.
 */
class GenerationEvaluator
{
  public:
    explicit GenerationEvaluator(const uarch::CoreConfig &config);

    /**
     * Grade every program, one CoverageVector each, semantically
     * identical to { measureAllCoverage(p, config()) for p in
     * programs }. @p parallel fans the per-program simulations across
     * the global ThreadPool in chunks. Throws Error::budget when
     * config().budget expires mid-batch (partial results discarded,
     * like the scalar evaluation loop).
     *
     * @p precomputedHashes, when non-null, must point at
     * programs.size() values of isa::contentHash(programs[i]) — the
     * loop's compilation phase already hashes every program for the
     * encoding cache, and re-hashing a 32 KiB init image per program
     * is measurable. Passing stale hashes corrupts the result cache.
     *
     * @p costs, when non-null, is resized to programs.size() and
     * filled with each program's grading cost (see EvalCost) — the
     * deterministic cost unit the adaptive mutation scheduler credits
     * operators with.
     */
    std::vector<CoverageVector>
    evaluate(const std::vector<isa::TestProgram> &programs,
             bool parallel = true,
             const std::uint64_t *precomputedHashes = nullptr,
             std::vector<EvalCost> *costs = nullptr);

    const uarch::CoreConfig &config() const { return coreCfg; }

    /** Cumulative counters since construction. */
    BatchStats stats() const;

  private:
    /** Per-run analyser bundle, recycled through a free list. The
     *  CoverageSession owns one analyser per storage descriptor (built
     *  from allStructures() factories), so new fault targets flow
     *  through batch grading without this file changing. */
    struct Workspace
    {
        CoverageSession cov;
        uarch::ProbeSet session;
    };

    std::unique_ptr<Workspace> acquireWorkspace();
    void releaseWorkspace(std::unique_ptr<Workspace> ws);

    uarch::CoreConfig coreCfg;
    /** coreCfg with runSignature forced off — what simulations
     *  actually run under. Grading never reads signatures and the
     *  memory hash dominates short runs (see file comment). */
    uarch::CoreConfig simCfg;
    std::uint64_t cfgFingerprint; ///< behaviorFingerprint(simCfg)

    std::mutex decodeMutex; ///< DecodeCache is not thread-safe
    uarch::DecodeCache decodeCache;

    uarch::CoreArena arena;

    std::mutex workspaceMutex;
    std::vector<std::unique_ptr<Workspace>> freeWorkspaces;

    /** Result cache: contentHash(program) -> graded vector. Keyed by
     *  hash alone (the campaign golden-run cache precedent): a 64-bit
     *  FNV collision within one run's program set is vanishingly
     *  unlikely and the cache only ever spans one core fingerprint.
     *  Cancelled runs are never cached — interruption is not a
     *  property of the program. */
    std::mutex resultMutex;
    std::unordered_map<std::uint64_t, CoverageVector> resultCache;

    /** Operand recorders, one per population slot, kept across
     *  generations so their stream buffers stop reallocating. */
    std::vector<std::unique_ptr<LaneIbrRecorder>> recorders;

    mutable std::mutex statsMutex;
    BatchStats cumulative;
};

/**
 * One-shot convenience: grade @p programs on a fresh evaluator. The
 * loop keeps a long-lived GenerationEvaluator instead (reuse across
 * generations is most of the win); this entry point serves callers
 * with a single batch, and the differential test.
 */
std::vector<CoverageVector>
evaluateGeneration(const std::vector<isa::TestProgram> &programs,
                   const uarch::CoreConfig &config, bool parallel = true);

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_BATCH_EVAL_HH
