/**
 * @file
 * SoA lane-oriented IBR grading for batch evaluation.
 *
 * The scalar IbrArithModel folds effectiveBits(a) + effectiveBits(b)
 * into a per-circuit accumulator at every functional-unit invocation,
 * inside the simulation. The batch evaluator splits that into two
 * phases so the reduction can run lane-parallel across the population:
 *
 *  1. During each program's run, a LaneIbrRecorder (a pure observing
 *     ChainedArithModel, exactly like IbrArithModel) appends the raw
 *     operand pairs per circuit into structure-of-arrays buffers — no
 *     per-invocation bit counting.
 *
 *  2. After the batch, gradeIbrLanes() processes the recorded streams
 *     in 64-wide lane sweeps, using PR 2's lane convention (bit L of
 *     every machine word belongs to lane L, see gates/netlist.hh):
 *     lane L of a sweep carries one operand pair from program L of the
 *     current 64-program group. Each sweep bit-transposes the 64 lane
 *     values into bit-planes, suffix-ORs the planes (plane k then
 *     flags every lane whose value has a set bit at position >= k, so
 *     a lane's effective-bit count is the number of planes flagging
 *     it), transposes back and adds one popcount per lane to that
 *     program's total.
 *
 * The reduction is pure integer arithmetic, so totals are exactly the
 * scalar sums — same doubles out of IbrArithModel::ratio — which the
 * differential test (tests/coverage/batch_eval_test.cpp) and the
 * bench identity check pin. See DESIGN.md §12 for why the netlists
 * themselves are *not* re-evaluated here: IBR is an input-side metric
 * and never consults gate outputs.
 */

#ifndef HARPOCRATES_COVERAGE_LANE_IBR_HH
#define HARPOCRATES_COVERAGE_LANE_IBR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "isa/arith_model.hh"
#include "isa/instruction.hh"

namespace harpo::coverage
{

inline constexpr std::size_t numFuCircuits = 5; // isa::FuCircuit values
inline constexpr std::size_t ibrLanes = 64;     // one uint64_t of lanes

/** Append-only structure-of-arrays operand recorder for one program.
 *  Chain into a ProbeSet exactly like IbrArithModel; it observes the
 *  same invocations and forwards values unchanged. */
class LaneIbrRecorder : public isa::ChainedArithModel
{
  public:
    explicit LaneIbrRecorder(isa::ArithModel *base_model = nullptr)
        : isa::ChainedArithModel(base_model)
    {}

    std::uint64_t
    intAdd(std::uint64_t a, std::uint64_t b, bool carry_in,
           bool &carry_out) override
    {
        append(isa::FuCircuit::IntAdd, a, b);
        return base().intAdd(a, b, carry_in, carry_out);
    }

    void
    intMul(std::uint64_t a, std::uint64_t b, std::uint64_t &lo,
           std::uint64_t &hi) override
    {
        append(isa::FuCircuit::IntMul, a, b);
        base().intMul(a, b, lo, hi);
    }

    std::uint64_t
    fpAdd(std::uint64_t a, std::uint64_t b) override
    {
        append(isa::FuCircuit::FpAdd, a, b);
        return base().fpAdd(a, b);
    }

    std::uint64_t
    fpMul(std::uint64_t a, std::uint64_t b) override
    {
        append(isa::FuCircuit::FpMul, a, b);
        return base().fpMul(a, b);
    }

    /** Recorded invocation count per circuit (== scalar uses()). */
    std::uint64_t
    uses(isa::FuCircuit circuit) const
    {
        return streams[static_cast<std::size_t>(circuit)].a.size();
    }

    const std::vector<std::uint64_t> &
    operandsA(isa::FuCircuit circuit) const
    {
        return streams[static_cast<std::size_t>(circuit)].a;
    }

    const std::vector<std::uint64_t> &
    operandsB(isa::FuCircuit circuit) const
    {
        return streams[static_cast<std::size_t>(circuit)].b;
    }

    /** Drop all recorded pairs, keeping buffer capacity (the batch
     *  evaluator recycles recorders across the population). */
    void
    reset()
    {
        for (auto &s : streams) {
            s.a.clear();
            s.b.clear();
        }
    }

  private:
    struct Stream
    {
        std::vector<std::uint64_t> a;
        std::vector<std::uint64_t> b;
    };

    void
    append(isa::FuCircuit circuit, std::uint64_t a, std::uint64_t b)
    {
        Stream &s = streams[static_cast<std::size_t>(circuit)];
        s.a.push_back(a);
        s.b.push_back(b);
    }

    std::array<Stream, numFuCircuits> streams;
};

/** Per-program grading output: accumulated effective input bits and
 *  invocation counts, indexed by isa::FuCircuit value. */
struct IbrTotals
{
    std::array<std::uint64_t, numFuCircuits> bits{};
    std::array<std::uint64_t, numFuCircuits> uses{};
};

/** Occupancy statistics of one grading pass (telemetry). */
struct LaneGradeStats
{
    std::uint64_t sweeps = 0;      ///< 64-lane reduction passes
    std::uint64_t lanesFilled = 0; ///< operand pairs graded in lanes
};

/** In-place 64x64 bit-matrix transpose: result bit (i, j) = input bit
 *  (j, i). Hacker's Delight 7-3, the same primitive family as the
 *  gates lane machinery's broadcast/extract helpers. */
inline void
transpose64(std::array<std::uint64_t, ibrLanes> &m)
{
    std::uint64_t mask = 0x00000000FFFFFFFFull;
    for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (unsigned k = 0; k < ibrLanes; k = ((k | j) + 1) & ~j) {
            const std::uint64_t t = (m[k] ^ (m[k | j] >> j)) & mask;
            m[k] ^= t;
            m[k | j] ^= t << j;
        }
    }
}

/**
 * Sum effectiveBits() across all 64 lanes of @p values into the
 * per-lane accumulators @p into, lane-parallel: one transpose to
 * bit-planes, a running OR across the planes so the plane holding
 * value-bit v ends up flagging every lane with a set bit at position
 * >= v (a lane's effective-bit count is then exactly the number of
 * planes flagging it — effectiveBits(x) = 1 + index of the top set
 * bit), one transpose back, one popcount per lane.
 *
 * Note the transpose convention: transpose64 maps input bit (row j,
 * pos p) to (row 63-p, pos 63-j), so plane k holds value-bit 63-k and
 * the OR must run from plane 0 (the top value-bit) downward. The
 * reversal cancels on the way back — transpose is an involution — so
 * the final popcount of values[L] still belongs to lane L.
 */
inline void
sumEffectiveBitsLanes(std::array<std::uint64_t, ibrLanes> &values,
                      std::uint64_t *into)
{
    transpose64(values); // plane k: value-bit 63-k across the lanes
    for (std::size_t k = 1; k < ibrLanes; ++k)
        values[k] |= values[k - 1];
    transpose64(values); // values[L] bit b = "lane L has a bit >= b"
    for (std::size_t lane = 0; lane < ibrLanes; ++lane)
        into[lane] += static_cast<std::uint64_t>(
            __builtin_popcountll(values[lane]));
}

/**
 * Grade the recorded operand streams of @p count programs in 64-wide
 * lane sweeps (lane L = program L of each consecutive 64-program
 * group; exhausted programs leave their lane zero, contributing
 * nothing). Bit-identical to folding IbrArithModel over each program:
 * the totals are exact integer sums of the same effectiveBits values.
 * @p recorders entries may be null (skipped — e.g. programs whose
 * evaluation was interrupted by the budget).
 */
inline std::vector<IbrTotals>
gradeIbrLanes(const LaneIbrRecorder *const *recorders, std::size_t count,
              LaneGradeStats *stats = nullptr)
{
    std::vector<IbrTotals> totals(count);
    std::array<std::uint64_t, ibrLanes> lanesA;
    std::array<std::uint64_t, ibrLanes> lanesB;
    std::array<std::uint64_t, ibrLanes> groupBits;

    for (std::size_t base = 0; base < count; base += ibrLanes) {
        const std::size_t width = std::min(ibrLanes, count - base);
        for (std::size_t c = 0; c < numFuCircuits; ++c) {
            const auto circuit = static_cast<isa::FuCircuit>(c);
            std::size_t longest = 0;
            for (std::size_t lane = 0; lane < width; ++lane) {
                const LaneIbrRecorder *r = recorders[base + lane];
                if (!r)
                    continue;
                const std::size_t n = r->operandsA(circuit).size();
                totals[base + lane].uses[c] = n;
                longest = std::max(longest, n);
            }
            groupBits.fill(0);
            for (std::size_t pair = 0; pair < longest; ++pair) {
                lanesA.fill(0);
                lanesB.fill(0);
                std::uint64_t filled = 0;
                for (std::size_t lane = 0; lane < width; ++lane) {
                    const LaneIbrRecorder *r = recorders[base + lane];
                    if (!r || pair >= r->operandsA(circuit).size())
                        continue;
                    lanesA[lane] = r->operandsA(circuit)[pair];
                    lanesB[lane] = r->operandsB(circuit)[pair];
                    ++filled;
                }
                sumEffectiveBitsLanes(lanesA, groupBits.data());
                sumEffectiveBitsLanes(lanesB, groupBits.data());
                if (stats) {
                    ++stats->sweeps;
                    stats->lanesFilled += filled;
                }
            }
            for (std::size_t lane = 0; lane < width; ++lane)
                totals[base + lane].bits[c] = groupBits[lane];
        }
    }
    return totals;
}

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_LANE_IBR_HH
