/**
 * @file
 * IBR (Input Bit Ratio) coverage for functional units (paper II-D):
 * the effective input bits delivered to a unit across execution,
 * divided by the theoretical maximum (full-width inputs every cycle).
 *
 * Implemented as an observing ArithModel decorator: it sees the exact
 * operand bits every unit invocation receives (including, e.g., the
 * inverted second operand of subtractions on the adder).
 */

#ifndef HARPOCRATES_COVERAGE_IBR_HH
#define HARPOCRATES_COVERAGE_IBR_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "isa/arith_model.hh"
#include "isa/instruction.hh"

namespace harpo::coverage
{

/** ArithModel decorator accumulating per-unit effective input bits.
 *  Chainable: compose over other observers or an executing fault
 *  model via uarch::ProbeSet::chain. */
class IbrArithModel : public isa::ChainedArithModel
{
  public:
    explicit IbrArithModel(isa::ArithModel *base_model = nullptr)
        : isa::ChainedArithModel(base_model)
    {}

    std::uint64_t
    intAdd(std::uint64_t a, std::uint64_t b, bool carry_in,
           bool &carry_out) override
    {
        record(isa::FuCircuit::IntAdd, a, b);
        return base().intAdd(a, b, carry_in, carry_out);
    }

    void
    intMul(std::uint64_t a, std::uint64_t b, std::uint64_t &lo,
           std::uint64_t &hi) override
    {
        record(isa::FuCircuit::IntMul, a, b);
        base().intMul(a, b, lo, hi);
    }

    std::uint64_t
    fpAdd(std::uint64_t a, std::uint64_t b) override
    {
        record(isa::FuCircuit::FpAdd, a, b);
        return base().fpAdd(a, b);
    }

    std::uint64_t
    fpMul(std::uint64_t a, std::uint64_t b) override
    {
        record(isa::FuCircuit::FpMul, a, b);
        return base().fpMul(a, b);
    }

    std::uint64_t
    inputBits(isa::FuCircuit circuit) const
    {
        return bits[static_cast<std::size_t>(circuit)];
    }

    std::uint64_t
    uses(isa::FuCircuit circuit) const
    {
        return opCount[static_cast<std::size_t>(circuit)];
    }

    /** IBR: accumulated effective input bits over the theoretical
     *  maximum per cycle. */
    double
    ibr(isa::FuCircuit circuit, std::uint64_t total_cycles) const
    {
        return ratio(circuit, inputBits(circuit), total_cycles);
    }

    /**
     * The IBR formula itself, shared with the batch evaluator's lane
     * grading pass (coverage/lane_ibr.hh) so both paths divide the
     * same accumulated bits by the same theoretical maximum. The
     * scalar integer units accept two 64-bit inputs per cycle (128
     * bits); the SSE FP units are 128-bit wide (two 64-bit lanes,
     * each with two operands: 256 bits). Clamped to 1 — wrong-path
     * work can otherwise push the ratio past the committed-path
     * theoretical maximum.
     */
    static double
    ratio(isa::FuCircuit circuit, std::uint64_t input_bits,
          std::uint64_t total_cycles)
    {
        if (total_cycles == 0)
            return 0.0;
        const bool packed = circuit == isa::FuCircuit::FpAdd ||
                            circuit == isa::FuCircuit::FpMul;
        const double maxPerCycle = packed ? 256.0 : 128.0;
        return std::min(
            1.0, static_cast<double>(input_bits) /
                     (maxPerCycle * static_cast<double>(total_cycles)));
    }

    /** Bits significant to the unit's computation: 64 minus leading
     *  zeros. The reference the lane grading pass must reproduce. */
    static unsigned
    effectiveBits(std::uint64_t v)
    {
        return v == 0 ? 0u
                      : 64u - static_cast<unsigned>(__builtin_clzll(v));
    }

    /** Zero all accumulators (recycled-session support). */
    void
    reset()
    {
        bits.fill(0);
        opCount.fill(0);
    }

  private:
    void
    record(isa::FuCircuit circuit, std::uint64_t a, std::uint64_t b)
    {
        const auto idx = static_cast<std::size_t>(circuit);
        bits[idx] += effectiveBits(a) + effectiveBits(b);
        ++opCount[idx];
    }

    std::array<std::uint64_t, 5> bits{};
    std::array<std::uint64_t, 5> opCount{};
};

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_IBR_HH
