/**
 * @file
 * ACE lifetime analysis (Mukherjee et al.) for the two bit-array fault
 * targets: the integer physical register file and the L1 data cache.
 *
 * A (bit x cycle) slot is ACE when the bit's value is required for
 * architecturally correct execution: intervals ending in a read are
 * ACE; intervals ending in an overwrite are un-ACE; cache intervals
 * ending in a dirty eviction are ACE (the data flows to memory);
 * clean evictions are un-ACE. Coverage is the ACE fraction of all
 * (bit x cycle) slots — the paper's hardware-coverage metric for
 * transient faults in bit arrays (section II-D, Fig. 3).
 */

#ifndef HARPOCRATES_COVERAGE_ACE_HH
#define HARPOCRATES_COVERAGE_ACE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coverage/analyzers.hh"
#include "isa/registers.hh"
#include "uarch/core.hh"
#include "uarch/probes.hh"

namespace harpo::coverage
{

/** ACE lifetime analyser for the integer physical register file.
 *
 *  Intervals are tracked per physical register; an interval ending in
 *  a read is ACE for the architecturally meaningful bits of the value
 *  it holds: all 64 for a GPR, but only the 5 modelled flag bits for
 *  a renamed RFLAGS — otherwise flag-heavy programs saturate the
 *  proxy with (bit x cycle) slots no fault can ever use. */
class PrfAceAnalyzer : public StructureAnalyzer
{
  public:
    void
    onIntRegRead(unsigned phys_reg, unsigned live_bits,
                 std::uint64_t cycle) override
    {
        ensure(phys_reg);
        // Interval ending in a read is ACE (write-to-read or
        // read-to-read) for the bits the consumer can propagate.
        aceBitCycles += static_cast<double>(cycle -
                                            lastEvent[phys_reg]) *
                        live_bits;
        lastEvent[phys_reg] = cycle;
    }

    void
    onIntRegWrite(unsigned phys_reg, unsigned arch_reg,
                  std::uint64_t cycle) override
    {
        (void)arch_reg;
        ensure(phys_reg);
        // Interval ending in an overwrite is un-ACE.
        lastEvent[phys_reg] = cycle;
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        // Registers holding live architectural values at the end feed
        // the output signature: their final interval is ACE.
        ensure(core.intPrf().size() - 1);
        const auto &committed = core.committedIntMap();
        for (unsigned arch = 0; arch < committed.size(); ++arch) {
            const double bits =
                arch == static_cast<unsigned>(isa::flagsReg) ? 5.0
                                                             : 64.0;
            aceBitCycles +=
                static_cast<double>(cycle -
                                    lastEvent[committed[arch]]) *
                bits;
        }
        totalCycles = cycle;
        numRegs = core.intPrf().size();
    }

    /** ACE fraction over all (bit x cycle) slots of the PRF. */
    double
    coverage() const override
    {
        if (totalCycles == 0 || numRegs == 0)
            return 0.0;
        return aceBitCycles /
               (static_cast<double>(totalCycles) * numRegs * 64.0);
    }

    /** Back to the just-constructed state, keeping the interval
     *  table's allocation (recycled-session support). */
    void
    reset() override
    {
        std::fill(lastEvent.begin(), lastEvent.end(), 0);
        aceBitCycles = 0.0;
        totalCycles = 0;
        numRegs = 0;
    }

  private:
    void
    ensure(unsigned phys_reg)
    {
        if (phys_reg >= lastEvent.size())
            lastEvent.resize(phys_reg + 1, 0);
    }

    std::vector<std::uint64_t> lastEvent;
    double aceBitCycles = 0.0;
    std::uint64_t totalCycles = 0;
    unsigned numRegs = 0;
};

/** ACE lifetime analyser for the L1 data cache data array. */
class CacheAceAnalyzer : public StructureAnalyzer
{
  public:
    void
    onCacheRead(std::uint32_t data_index, unsigned len,
                std::uint64_t cycle) override
    {
        ensure(data_index + len);
        for (unsigned i = 0; i < len; ++i) {
            aceByteCycles += cycle - lastEvent[data_index + i];
            lastEvent[data_index + i] = cycle;
        }
    }

    void
    onCacheWrite(std::uint32_t data_index, unsigned len,
                 std::uint64_t cycle) override
    {
        ensure(data_index + len);
        for (unsigned i = 0; i < len; ++i)
            lastEvent[data_index + i] = cycle;
    }

    void
    onCacheEvict(std::uint32_t data_index, unsigned len, bool dirty,
                 std::uint64_t cycle) override
    {
        ensure(data_index + len);
        for (unsigned i = 0; i < len; ++i) {
            if (dirty)
                aceByteCycles += cycle - lastEvent[data_index + i];
            lastEvent[data_index + i] = cycle;
        }
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        totalCycles = cycle;
        numBytes = core.l1d().dataSize();
    }

    /** ACE fraction over all (bit x cycle) slots of the data array. */
    double
    coverage() const override
    {
        if (totalCycles == 0 || numBytes == 0)
            return 0.0;
        return static_cast<double>(aceByteCycles) /
               (static_cast<double>(totalCycles) * numBytes);
    }

    /** Back to the just-constructed state, keeping the interval
     *  table's allocation (recycled-session support). */
    void
    reset() override
    {
        std::fill(lastEvent.begin(), lastEvent.end(), 0);
        aceByteCycles = 0;
        totalCycles = 0;
        numBytes = 0;
    }

  private:
    void
    ensure(std::size_t size)
    {
        if (size > lastEvent.size())
            lastEvent.resize(size, 0);
    }

    std::vector<std::uint64_t> lastEvent;
    std::uint64_t aceByteCycles = 0;
    std::uint64_t totalCycles = 0;
    std::uint32_t numBytes = 0;
};

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_ACE_HH
