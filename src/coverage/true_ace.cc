#include "coverage/true_ace.hh"

#include <algorithm>
#include <unordered_set>

#include "isa/registers.hh"

namespace harpo::coverage
{

void
TrueAceAnalyzer::onInstExecuted(const uarch::ExecInfo &info)
{
    records.push_back(info);
}

void
TrueAceAnalyzer::onInstCommitted(std::uint64_t seq)
{
    committedSeqs.push_back(seq);
}

void
TrueAceAnalyzer::onRunEnd(uarch::Core &core, std::uint64_t cycle)
{
    const std::uint64_t endCycle = cycle;
    const unsigned numRegs = core.intPrf().size();

    std::unordered_set<std::uint64_t> committed(committedSeqs.begin(),
                                                committedSeqs.end());

    // Retried instructions emit multiple records; keep the last one
    // per sequence number (the successful execution).
    std::sort(records.begin(), records.end(),
              [](const uarch::ExecInfo &a, const uarch::ExecInfo &b) {
                  return a.seq < b.seq;
              });
    std::vector<uarch::ExecInfo> unique;
    unique.reserve(records.size());
    for (const auto &r : records) {
        if (!unique.empty() && unique.back().seq == r.seq)
            unique.back() = r;
        else
            unique.push_back(r);
    }

    // ---- Backward liveness over the dynamic def-use graph. ----
    // neededDefs: producing sequence numbers whose values some live
    // instruction consumed. Def seq 0 denotes initial architectural
    // values (always a valid producer).
    std::unordered_set<std::uint64_t> neededDefs;

    // Defs still architecturally mapped at the end are sinks.
    const auto &defSeqs = core.intDefSeqs();
    for (const std::uint16_t phys : core.committedIntMap())
        neededDefs.insert(defSeqs[phys]);

    std::unordered_set<std::uint64_t> liveInsts;
    for (auto it = unique.rbegin(); it != unique.rend(); ++it) {
        const auto &r = *it;
        if (!committed.count(r.seq))
            continue; // squashed: architecturally invisible
        const bool live = r.isStore || r.isBranch || r.faulted ||
                          neededDefs.count(r.seq) != 0;
        if (!live)
            continue;
        liveInsts.insert(r.seq);
        for (int s = 0; s < r.numSrcs; ++s)
            neededDefs.insert(r.srcs[s].defSeq);
    }

    // ---- Per-physical-register event sweep. ----
    // Events: every write (any path: a wrong-path write physically
    // overwrites the bits) and every read by a live committed
    // instruction. ACE credit accrues on live reads.
    struct Event
    {
        std::uint64_t cycle;
        std::uint32_t phys;
        bool isRead;
        std::uint8_t bits;
    };
    std::vector<Event> events;
    events.reserve(unique.size() * 3);
    for (const auto &r : unique) {
        for (int d = 0; d < r.numDefs; ++d)
            events.push_back({r.cycle, r.defs[d].phys, false, 0});
        if (liveInsts.count(r.seq)) {
            for (int s = 0; s < r.numSrcs; ++s) {
                events.push_back({r.cycle, r.srcs[s].phys, true,
                                  r.srcs[s].liveBits});
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.phys != b.phys)
                      return a.phys < b.phys;
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  // Reads before writes at the same cycle.
                  return a.isRead && !b.isRead;
              });

    double aceBitCycles = 0.0;
    std::vector<std::uint64_t> lastEvent(numRegs, 0);
    for (const auto &e : events) {
        if (e.isRead) {
            aceBitCycles +=
                static_cast<double>(e.cycle - lastEvent[e.phys]) *
                e.bits;
        }
        lastEvent[e.phys] = e.cycle;
    }

    // Final intervals of architecturally mapped registers are ACE.
    const auto &committedMap = core.committedIntMap();
    for (unsigned arch = 0; arch < committedMap.size(); ++arch) {
        const double bits =
            arch == static_cast<unsigned>(isa::flagsReg) ? 5.0 : 64.0;
        aceBitCycles +=
            static_cast<double>(endCycle -
                                lastEvent[committedMap[arch]]) *
            bits;
    }

    finalCoverage =
        endCycle == 0 || numRegs == 0
            ? 0.0
            : aceBitCycles / (static_cast<double>(endCycle) * numRegs *
                              64.0);
}

} // namespace harpo::coverage
