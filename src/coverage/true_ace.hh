/**
 * @file
 * True-liveness ACE analysis for the integer physical register file.
 *
 * The classic interval analysis (PrfAceAnalyzer) counts every
 * read-terminated interval as ACE — but a read whose consumer's
 * results never transitively reach an architectural output (memory,
 * control flow, the final register state) is not "necessary for
 * architecturally correct execution". The paper defines ACE as
 * exactly the necessary bits (section II-D), so this analyser builds
 * the dynamic def-use graph during simulation and back-propagates
 * liveness from the real sinks:
 *
 *   - committed stores (memory feeds the output signature),
 *   - committed branches (direction steers control flow),
 *   - committed faulting instructions,
 *   - defs that remain architecturally mapped at the end of the run,
 *
 * then credits only intervals ending in reads by transitively live
 * instructions, weighted by the consumer's live-bits estimate.
 * Used as the IRF coverage metric of the Harpocrates loop; without
 * the refinement, evolution learns to game the proxy with reads whose
 * consumers are dead (Goodhart's law on coverage metrics).
 */

#ifndef HARPOCRATES_COVERAGE_TRUE_ACE_HH
#define HARPOCRATES_COVERAGE_TRUE_ACE_HH

#include <cstdint>
#include <vector>

#include "coverage/analyzers.hh"
#include "uarch/core.hh"
#include "uarch/probes.hh"

namespace harpo::coverage
{

/** Liveness-refined ACE analyser for the integer PRF. */
class TrueAceAnalyzer : public StructureAnalyzer
{
  public:
    void onInstExecuted(const uarch::ExecInfo &info) override;
    void onInstCommitted(std::uint64_t seq) override;
    void onRunEnd(uarch::Core &core, std::uint64_t cycle) override;

    /** ACE fraction over all (bit x cycle) slots of the PRF. Valid
     *  after the run ends. */
    double coverage() const override { return finalCoverage; }

    /** Back to the just-constructed state, keeping the def-use record
     *  allocations (recycled-session support). */
    void
    reset() override
    {
        records.clear();
        committedSeqs.clear();
        finalCoverage = 0.0;
    }

  private:
    std::vector<uarch::ExecInfo> records;
    std::vector<std::uint64_t> committedSeqs;
    double finalCoverage = 0.0;
};

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_TRUE_ACE_HH
