/**
 * @file
 * The common interface of all storage-structure coverage analysers,
 * plus the ACE analysers for the four pipeline-state targets (ROB,
 * rename map, store queue, branch predictor).
 *
 * Every storage target registered in coverage::allStructures() names
 * an analyser factory returning a StructureAnalyzer; callers attach
 * the analyser to an evaluation session (uarch::ProbeSet) and read
 * coverage() after the run, without knowing which concrete analysis
 * backs the structure (interval ACE, true-liveness ACE, occupancy
 * accounting). Functional units use IBR instead and have no analyser.
 *
 * The pipeline-state analysers are first-order ACE proxies in the
 * spirit of the bit-array analysers (coverage/ace.hh): a (site x
 * cycle) slot counts as ACE when the state it holds can influence
 * architecturally correct execution — an occupied ROB entry's rename
 * tags steer commit and squash, buffered store data of an executed
 * store flows to the cache at commit, a rename-map entry read by a
 * renamed consumer redirects its sources, a predictor counter
 * consulted at fetch steers (speculative) control flow. Each is a
 * utilization/lifetime upper bound of the truly-ACE fraction, which
 * is the same first-order approximation the PRF/L1D interval
 * analysers make (DESIGN.md §14).
 */

#ifndef HARPOCRATES_COVERAGE_ANALYZERS_HH
#define HARPOCRATES_COVERAGE_ANALYZERS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "uarch/core.hh"
#include "uarch/probes.hh"

namespace harpo::coverage
{

/** A coverage analyser for one storage structure: a pure-observer
 *  probe whose coverage() is valid once the observed run ended. */
class StructureAnalyzer : public uarch::CoreProbe
{
  public:
    /** Coverage in [0, 1] of the analysed structure. */
    virtual double coverage() const = 0;

    /** Back to the just-constructed state, keeping allocations
     *  (recycled-session support). */
    virtual void reset() = 0;
};

/** Occupancy-lifetime ACE analyser for the reorder buffer. An
 *  occupied entry's rename bookkeeping (destination tags) is live
 *  until the entry commits or squashes: a flipped tag makes commit
 *  publish — and squash/commit free — the wrong physical register.
 *  Coverage is occupied entry-cycles over all entry-cycles. */
class RobAceAnalyzer : public StructureAnalyzer
{
  public:
    void
    onCycleBegin(uarch::Core &core, std::uint64_t cycle) override
    {
        (void)cycle;
        occupiedEntryCycles +=
            static_cast<double>(core.robOccupancy());
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        totalCycles = cycle;
        numEntries = core.config().robSize;
    }

    double
    coverage() const override
    {
        if (totalCycles == 0 || numEntries == 0)
            return 0.0;
        return occupiedEntryCycles /
               (static_cast<double>(totalCycles) * numEntries);
    }

    void
    reset() override
    {
        occupiedEntryCycles = 0.0;
        totalCycles = 0;
        numEntries = 0;
    }

  private:
    double occupiedEntryCycles = 0.0;
    std::uint64_t totalCycles = 0;
    unsigned numEntries = 0;
};

/** Interval ACE analyser for the speculative integer rename map.
 *  An interval ending in a rename-stage read is ACE (the consumer's
 *  source mapping came from it); an interval ending in an overwrite
 *  (new producer renamed, or squash restore) is un-ACE. Entries are
 *  architecturally mapped at run end, so their final interval is ACE
 *  (they name the registers feeding the output signature). */
class RenameMapAceAnalyzer : public StructureAnalyzer
{
  public:
    void
    onRenameRead(unsigned arch_reg, std::uint64_t cycle) override
    {
        ensure(arch_reg);
        aceEntryCycles +=
            static_cast<double>(cycle - lastEvent[arch_reg]);
        lastEvent[arch_reg] = cycle;
    }

    void
    onRenameWrite(unsigned arch_reg, std::uint64_t cycle) override
    {
        ensure(arch_reg);
        lastEvent[arch_reg] = cycle;
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        (void)core;
        ensure(isa::numIntArchRegs - 1);
        for (int arch = 0; arch < isa::numIntArchRegs; ++arch)
            aceEntryCycles +=
                static_cast<double>(cycle - lastEvent[arch]);
        totalCycles = cycle;
    }

    double
    coverage() const override
    {
        if (totalCycles == 0)
            return 0.0;
        return aceEntryCycles / (static_cast<double>(totalCycles) *
                                 isa::numIntArchRegs);
    }

    void
    reset() override
    {
        std::fill(lastEvent.begin(), lastEvent.end(), 0);
        aceEntryCycles = 0.0;
        totalCycles = 0;
    }

  private:
    void
    ensure(unsigned arch_reg)
    {
        if (arch_reg >= lastEvent.size())
            lastEvent.resize(arch_reg + 1, 0);
    }

    std::vector<std::uint64_t> lastEvent;
    double aceEntryCycles = 0.0;
    std::uint64_t totalCycles = 0;
};

/** Occupancy-lifetime ACE analyser for the store queue's data field.
 *  Bytes of an *executed* store are live from execute to commit
 *  drain — they are exactly what the cache write publishes; bytes of
 *  a not-yet-executed entry and bytes beyond the store's width are
 *  dead (overwritten or never drained). Coverage is live byte-cycles
 *  over all (entry x byte x cycle) slots. */
class StoreQueueAceAnalyzer : public StructureAnalyzer
{
  public:
    static constexpr unsigned bytesPerEntry = 16;

    void
    onCycleBegin(uarch::Core &core, std::uint64_t cycle) override
    {
        (void)cycle;
        for (const uarch::StoreEntry &s : core.storeQueueState()) {
            if (s.executed)
                liveByteCycles += static_cast<double>(s.size);
        }
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        totalCycles = cycle;
        numEntries = core.config().sqSize;
    }

    double
    coverage() const override
    {
        if (totalCycles == 0 || numEntries == 0)
            return 0.0;
        return liveByteCycles /
               (static_cast<double>(totalCycles) * numEntries *
                bytesPerEntry);
    }

    void
    reset() override
    {
        liveByteCycles = 0.0;
        totalCycles = 0;
        numEntries = 0;
    }

  private:
    double liveByteCycles = 0.0;
    std::uint64_t totalCycles = 0;
    unsigned numEntries = 0;
};

/** Interval ACE analyser for the branch-predictor counter table. A
 *  counter-slot interval ending in a fetch-stage lookup is ACE (its
 *  value steered fetch); an interval ending in a training update is
 *  un-ACE (overwritten). Predictor state never reaches architectural
 *  outputs — a wrong prediction only costs a squash — so unlike the
 *  other structures there is no end-of-run credit; the metric drives
 *  evolution toward programs that keep many counters steering fetch,
 *  which is what maximises a fault's chance to perturb timing. */
class BpAceAnalyzer : public StructureAnalyzer
{
  public:
    void
    onCycleBegin(uarch::Core &core, std::uint64_t cycle) override
    {
        (void)cycle;
        if (numSlots == 0) {
            numSlots = core.branchPredictor().size();
            lastEvent.assign(numSlots, 0);
        }
    }

    void
    onBpLookup(std::uint64_t pc, std::uint64_t cycle) override
    {
        if (numSlots == 0)
            return;
        const std::size_t slot = pc % numSlots;
        aceSlotCycles +=
            static_cast<double>(cycle - lastEvent[slot]);
        lastEvent[slot] = cycle;
    }

    void
    onBpUpdate(std::uint64_t pc, std::uint64_t cycle) override
    {
        if (numSlots == 0)
            return;
        lastEvent[pc % numSlots] = cycle;
    }

    void
    onRunEnd(uarch::Core &core, std::uint64_t cycle) override
    {
        (void)core;
        totalCycles = cycle;
    }

    double
    coverage() const override
    {
        if (totalCycles == 0 || numSlots == 0)
            return 0.0;
        return aceSlotCycles /
               (static_cast<double>(totalCycles) * numSlots);
    }

    void
    reset() override
    {
        std::fill(lastEvent.begin(), lastEvent.end(), 0);
        aceSlotCycles = 0.0;
        totalCycles = 0;
        numSlots = 0;
    }

  private:
    std::vector<std::uint64_t> lastEvent;
    double aceSlotCycles = 0.0;
    std::uint64_t totalCycles = 0;
    std::size_t numSlots = 0;
};

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_ANALYZERS_HH
