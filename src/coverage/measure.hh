/**
 * @file
 * Unified hardware-coverage measurement: given a test program and a
 * target structure, run it once on the core model and return the
 * structure-appropriate coverage metric (ACE for bit arrays, IBR for
 * functional units). This is the fast grading step of the Harpocrates
 * loop (paper step 1).
 */

#ifndef HARPOCRATES_COVERAGE_MEASURE_HH
#define HARPOCRATES_COVERAGE_MEASURE_HH

#include "isa/program.hh"
#include "uarch/core.hh"

namespace harpo::coverage
{

/** The six hardware structures evaluated in the paper. */
enum class TargetStructure : std::uint8_t
{
    IntRegFile,    ///< physical integer register file (transients)
    L1DCache,      ///< L1 data cache data array (transients)
    IntAdder,      ///< integer adder, gate-level (permanents)
    IntMultiplier, ///< integer multiplier, gate-level (permanents)
    FpAdder,       ///< SSE FP adder, gate-level (permanents)
    FpMultiplier,  ///< SSE FP multiplier, gate-level (permanents)
};

/** Printable structure name (as used in the paper's figures). */
const char *structureName(TargetStructure target);

/** The gate circuit backing a functional-unit target (None for the
 *  bit-array targets). */
isa::FuCircuit circuitFor(TargetStructure target);

/** Whether the structure is a bit array (ACE metric / transient SFI)
 *  as opposed to a functional unit (IBR metric / permanent SFI). */
bool isBitArray(TargetStructure target);

/** Result of one coverage measurement run. */
struct CoverageResult
{
    double coverage = 0.0;        ///< ACE or IBR, in [0, 1]
    uarch::SimResult sim;         ///< the underlying simulation
};

/** Measure @p target coverage of @p program on a core of @p config.
 *  Crashing/hanging programs get coverage 0 (they are not usable as
 *  test programs). */
CoverageResult measureCoverage(const isa::TestProgram &program,
                               TargetStructure target,
                               const uarch::CoreConfig &config);

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_MEASURE_HH
