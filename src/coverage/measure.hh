/**
 * @file
 * Unified hardware-coverage measurement: given a test program, run it
 * once on the core model with every coverage analyser attached as one
 * composed evaluation session (uarch::ProbeSet) and return all
 * structure coverages — ACE for the storage structures, IBR for the
 * functional units. This is the fast grading step of the Harpocrates
 * loop (paper step 1); grading every structure costs the same one
 * simulation as grading one (DESIGN.md §9).
 *
 * The structure descriptor table (allStructures()) is the single
 * source of truth for everything per-structure: name, metric kind,
 * gate circuit, fault-site geometry, injector, and analyser factory.
 * The fault campaign, the batch evaluator, the MultiTarget objective
 * and the tools all iterate the table instead of special-casing
 * structures, so adding a target is one table row plus its core
 * hooks (docs/EXTENDING.md, DESIGN.md §14).
 */

#ifndef HARPOCRATES_COVERAGE_MEASURE_HH
#define HARPOCRATES_COVERAGE_MEASURE_HH

#include <array>
#include <memory>
#include <optional>

#include "coverage/ace.hh"
#include "coverage/analyzers.hh"
#include "coverage/ibr.hh"
#include "coverage/true_ace.hh"
#include "isa/program.hh"
#include "uarch/core.hh"

namespace harpo::coverage
{

/** The hardware structures under evaluation: the paper's six plus
 *  the pipeline-state ACE targets. Values are stable — they index
 *  weight arrays and appear in persisted formats. */
enum class TargetStructure : std::uint8_t
{
    IntRegFile,    ///< physical integer register file (transients)
    L1DCache,      ///< L1 data cache data array (transients)
    IntAdder,      ///< integer adder, gate-level (permanents)
    IntMultiplier, ///< integer multiplier, gate-level (permanents)
    FpAdder,       ///< SSE FP adder, gate-level (permanents)
    FpMultiplier,  ///< SSE FP multiplier, gate-level (permanents)
    Rob,           ///< reorder-buffer rename tags (transients)
    RenameMap,     ///< speculative integer rename map (transients)
    StoreQueue,    ///< store-queue data field (transients)
    BranchPredictor, ///< bimodal counter table (transients)
};

inline constexpr std::size_t numTargetStructures = 10;

/** How a structure's fault sites are laid out — decides how
 *  sampleFaults draws locations and what a "location" means. */
enum class SiteKind : std::uint8_t
{
    BitArray,       ///< dense (entry x bit) array: PRF words, cache bytes
    QueueEntries,   ///< age-ordered queue slots (ROB, store queue);
                    ///< a sampled slot may be unoccupied at the
                    ///< injection cycle (struck-but-empty ⇒ Masked)
    TableEntries,   ///< always-populated indexed table (rename map,
                    ///< predictor counters)
    FunctionalUnit, ///< gate netlist: sites are stuck-at gates, not
                    ///< (location, bit) pairs
};

/** Fault-site geometry of one storage structure under a given core
 *  configuration: @p entries addressable locations of @p bitsPerEntry
 *  bits each. */
struct SiteGeometry
{
    std::uint32_t entries = 0;
    std::uint32_t bitsPerEntry = 0;

    std::uint64_t
    totalSites() const
    {
        return static_cast<std::uint64_t>(entries) * bitsPerEntry;
    }
};

/** Everything the library knows about one target structure. The
 *  single source of truth for names, circuits, metric kinds, fault
 *  geometry, injectors and analyser factories. */
struct StructureInfo
{
    TargetStructure target;
    const char *name;        ///< as used in the paper's figures
    isa::FuCircuit circuit;  ///< None for the storage targets
    bool bitArray;           ///< storage (ACE/transient SFI) vs
                             ///< functional unit (IBR/stuck-at SFI)
    SiteKind kind;

    /** Fault-site geometry under @p config (null for FUs, whose
     *  sites are netlist gates). */
    SiteGeometry (*geometry)(const uarch::CoreConfig &config);

    /** Transient injector: flip bit @p bit of location @p location.
     *  Returns false when the site does not currently exist (e.g. an
     *  empty queue slot) — the fault struck dead state. Null for FUs. */
    bool (*flip)(uarch::Core &core, std::uint32_t location,
                 std::uint8_t bit);

    /** Stuck-at injector: force the site's bit to @p value. Same
     *  contract as flip. Null for FUs. */
    bool (*force)(uarch::Core &core, std::uint32_t location,
                  std::uint8_t bit, bool value);

    /** Fresh coverage analyser for this structure (golden-run probe
     *  wiring). Null for FUs — their metric is IBR, measured by the
     *  session-wide IbrArithModel. */
    std::unique_ptr<StructureAnalyzer> (*makeAnalyzer)();
};

/** The descriptor table, indexed by TargetStructure value. */
const std::array<StructureInfo, numTargetStructures> &allStructures();

/** The descriptor of @p target. Panics on an out-of-range value. */
const StructureInfo &structureInfo(TargetStructure target);

/** Printable structure name (as used in the paper's figures).
 *  Panics on an out-of-range enum value. */
const char *structureName(TargetStructure target);

/** Exact inverse of structureName: the structure whose name is
 *  @p name, or nullopt when no structure matches. */
std::optional<TargetStructure> parseStructure(const char *name);

/** The gate circuit backing a functional-unit target (None for the
 *  storage targets). */
isa::FuCircuit circuitFor(TargetStructure target);

/** Whether the structure is a storage array (ACE metric / transient
 *  SFI) as opposed to a functional unit (IBR metric / stuck-at SFI). */
bool isBitArray(TargetStructure target);

/** Result of one coverage measurement run. */
struct CoverageResult
{
    double coverage = 0.0;        ///< ACE or IBR, in [0, 1]
    uarch::SimResult sim;         ///< the underlying simulation
};

/** All structure coverages from one simulation. */
struct CoverageVector
{
    std::array<double, numTargetStructures> coverage{};
    uarch::SimResult sim;         ///< the underlying simulation

    double
    operator[](TargetStructure target) const
    {
        return coverage[static_cast<std::size_t>(target)];
    }
};

/**
 * The coverage analysers of one evaluation session, bundled so other
 * subsystems (e.g. the fault campaign's unified golden run) can attach
 * all-structure coverage to a ProbeSet they already drive. One
 * analyser instance per storage descriptor (built from the table's
 * factories) plus the shared IBR model for the functional units.
 * Move-only: analysers are owned.
 */
class CoverageSession
{
  public:
    CoverageSession();

    /** Chain the IBR model and register every storage analyser on
     *  @p session. Call before Core::run; the IBR observer stacks
     *  over whatever model the session already carries. */
    void attach(uarch::ProbeSet &session);

    /** Register only the storage analysers (no IBR chaining), for
     *  callers that manage their own arith-model chain (the batch
     *  evaluator's transposed IBR pass). */
    void attachAnalyzers(uarch::ProbeSet &session);

    /** Assemble the vector once the session's run completed with
     *  @p sim. Non-finished runs yield all-zero coverage. */
    CoverageVector extract(const uarch::SimResult &sim) const;

    /** The analyser-reported coverage of one storage target (valid
     *  after the run ended). Panics on a functional-unit target. */
    double storageCoverage(TargetStructure target) const;

    /** Zero every analyser, keeping their allocations, so one
     *  CoverageSession serves a whole population (attach to a cleared
     *  ProbeSet again after resetting). */
    void reset();

  private:
    std::array<std::unique_ptr<StructureAnalyzer>, numTargetStructures>
        analyzers;
    IbrArithModel ibr;
};

/**
 * Measure all structure coverages of @p program in ONE core
 * simulation: every storage analyser and the IbrArithModel (the four
 * FUs) ride the same run as a composed ProbeSet session. Each entry
 * is bit-identical to the corresponding solo measureCoverage value
 * (probes are pure observers; proven by
 * tests/coverage/session_test.cpp). Crashing/hanging programs get
 * all-zero coverage (they are not usable as test programs).
 */
CoverageVector measureAllCoverage(const isa::TestProgram &program,
                                  const uarch::CoreConfig &config);

/** Measure @p target coverage of @p program on a core of @p config —
 *  a single-structure projection of measureAllCoverage. */
CoverageResult measureCoverage(const isa::TestProgram &program,
                               TargetStructure target,
                               const uarch::CoreConfig &config);

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_MEASURE_HH
