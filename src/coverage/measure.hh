/**
 * @file
 * Unified hardware-coverage measurement: given a test program, run it
 * once on the core model with every coverage analyser attached as one
 * composed evaluation session (uarch::ProbeSet) and return all six
 * structure coverages — ACE for the bit arrays, IBR for the
 * functional units. This is the fast grading step of the Harpocrates
 * loop (paper step 1); grading all six structures costs the same one
 * simulation as grading one (DESIGN.md §9).
 */

#ifndef HARPOCRATES_COVERAGE_MEASURE_HH
#define HARPOCRATES_COVERAGE_MEASURE_HH

#include <array>
#include <optional>

#include "coverage/ace.hh"
#include "coverage/ibr.hh"
#include "coverage/true_ace.hh"
#include "isa/program.hh"
#include "uarch/core.hh"

namespace harpo::coverage
{

/** The six hardware structures evaluated in the paper. */
enum class TargetStructure : std::uint8_t
{
    IntRegFile,    ///< physical integer register file (transients)
    L1DCache,      ///< L1 data cache data array (transients)
    IntAdder,      ///< integer adder, gate-level (permanents)
    IntMultiplier, ///< integer multiplier, gate-level (permanents)
    FpAdder,       ///< SSE FP adder, gate-level (permanents)
    FpMultiplier,  ///< SSE FP multiplier, gate-level (permanents)
};

inline constexpr std::size_t numTargetStructures = 6;

/** Everything the library knows about one target structure. The
 *  single source of truth for names, circuits and metric kinds. */
struct StructureInfo
{
    TargetStructure target;
    const char *name;        ///< as used in the paper's figures
    isa::FuCircuit circuit;  ///< None for the bit-array targets
    bool bitArray;           ///< ACE/transients vs IBR/permanents
};

/** The descriptor table, indexed by TargetStructure value. */
const std::array<StructureInfo, numTargetStructures> &allStructures();

/** Printable structure name (as used in the paper's figures).
 *  Panics on an out-of-range enum value. */
const char *structureName(TargetStructure target);

/** Exact inverse of structureName: the structure whose name is
 *  @p name, or nullopt when no structure matches. */
std::optional<TargetStructure> parseStructure(const char *name);

/** The gate circuit backing a functional-unit target (None for the
 *  bit-array targets). */
isa::FuCircuit circuitFor(TargetStructure target);

/** Whether the structure is a bit array (ACE metric / transient SFI)
 *  as opposed to a functional unit (IBR metric / permanent SFI). */
bool isBitArray(TargetStructure target);

/** Result of one coverage measurement run. */
struct CoverageResult
{
    double coverage = 0.0;        ///< ACE or IBR, in [0, 1]
    uarch::SimResult sim;         ///< the underlying simulation
};

/** All six structure coverages from one simulation. */
struct CoverageVector
{
    std::array<double, numTargetStructures> coverage{};
    uarch::SimResult sim;         ///< the underlying simulation

    double
    operator[](TargetStructure target) const
    {
        return coverage[static_cast<std::size_t>(target)];
    }
};

/**
 * The coverage analysers of one evaluation session, bundled so other
 * subsystems (e.g. the fault campaign's unified golden run) can attach
 * all-six-structure coverage to a ProbeSet they already drive.
 */
class CoverageSession
{
  public:
    /** Chain the IBR model and register the ACE probes on
     *  @p session. Call before Core::run; the IBR observer stacks
     *  over whatever model the session already carries. */
    void
    attach(uarch::ProbeSet &session)
    {
        session.chain(ibr);
        session.add(&irfAce);
        session.add(&l1dAce);
    }

    /** Assemble the vector once the session's run completed with
     *  @p sim. Non-finished runs yield all-zero coverage. */
    CoverageVector extract(const uarch::SimResult &sim) const;

    /** Zero every analyser, keeping their allocations, so one
     *  CoverageSession serves a whole population (attach to a cleared
     *  ProbeSet again after resetting). */
    void
    reset()
    {
        irfAce.reset();
        l1dAce.reset();
        ibr.reset();
    }

  private:
    TrueAceAnalyzer irfAce;
    CacheAceAnalyzer l1dAce;
    IbrArithModel ibr;
};

/**
 * Measure all six structure coverages of @p program in ONE core
 * simulation: TrueAceAnalyzer (IRF), CacheAceAnalyzer (L1D) and
 * IbrArithModel (the four FUs) ride the same run as a composed
 * ProbeSet session. Each entry is bit-identical to the corresponding
 * solo measureCoverage value (probes are pure observers; proven by
 * tests/coverage/session_test.cpp). Crashing/hanging programs get
 * all-zero coverage (they are not usable as test programs).
 */
CoverageVector measureAllCoverage(const isa::TestProgram &program,
                                  const uarch::CoreConfig &config);

/** Measure @p target coverage of @p program on a core of @p config —
 *  a single-structure projection of measureAllCoverage. */
CoverageResult measureCoverage(const isa::TestProgram &program,
                               TargetStructure target,
                               const uarch::CoreConfig &config);

} // namespace harpo::coverage

#endif // HARPOCRATES_COVERAGE_MEASURE_HH
