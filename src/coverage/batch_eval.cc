#include "coverage/batch_eval.hh"

#include <atomic>
#include <utility>

#include "common/thread_pool.hh"
#include "resilience/error.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace harpo::coverage
{

namespace
{

struct BatchMetrics
{
    telemetry::MetricId batches;
    telemetry::MetricId programs;
    telemetry::MetricId evalCacheHits;
    telemetry::MetricId decodeHits;
    telemetry::MetricId decodeMisses;
    telemetry::MetricId arenaReuses;
    telemetry::MetricId laneSweeps;
    telemetry::MetricId lanesFilled;
    telemetry::MetricId simCycles;
    telemetry::MetricId cachedCycles;
};

const BatchMetrics &
batchMetrics()
{
    static const BatchMetrics m = [] {
        auto &reg = telemetry::MetricsRegistry::instance();
        BatchMetrics ids;
        ids.batches = reg.counter("batch.generations");
        ids.programs = reg.counter("batch.programs");
        ids.evalCacheHits = reg.counter("batch.eval_cache_hits");
        ids.decodeHits = reg.counter("batch.decode_hits");
        ids.decodeMisses = reg.counter("batch.decode_misses");
        ids.arenaReuses = reg.counter("batch.arena_reuses");
        ids.laneSweeps = reg.counter("batch.lane_sweeps");
        ids.lanesFilled = reg.counter("batch.lanes_filled");
        ids.simCycles = reg.counter("batch.sim_cycles");
        ids.cachedCycles = reg.counter("batch.cached_cycles");
        return ids;
    }();
    return m;
}

} // namespace

GenerationEvaluator::GenerationEvaluator(const uarch::CoreConfig &config)
    : coreCfg(config), simCfg(config)
{
    simCfg.runSignature = false;
    cfgFingerprint = uarch::behaviorFingerprint(simCfg);
}

std::unique_ptr<GenerationEvaluator::Workspace>
GenerationEvaluator::acquireWorkspace()
{
    {
        std::lock_guard<std::mutex> lock(workspaceMutex);
        if (!freeWorkspaces.empty()) {
            auto ws = std::move(freeWorkspaces.back());
            freeWorkspaces.pop_back();
            return ws;
        }
    }
    return std::make_unique<Workspace>();
}

void
GenerationEvaluator::releaseWorkspace(std::unique_ptr<Workspace> ws)
{
    std::lock_guard<std::mutex> lock(workspaceMutex);
    freeWorkspaces.push_back(std::move(ws));
}

std::vector<CoverageVector>
GenerationEvaluator::evaluate(
    const std::vector<isa::TestProgram> &programs, bool parallel,
    const std::uint64_t *precomputedHashes,
    std::vector<EvalCost> *costs)
{
    HARPO_TRACE_SPAN("batch_eval", "coverage");

    const std::size_t n = programs.size();
    std::vector<CoverageVector> out(n);
    if (costs)
        costs->assign(n, EvalCost{});
    if (n == 0)
        return out;

    std::vector<std::uint64_t> hashes(n, 0);
    // Which recorder graded program i (null: result-cache hit, or the
    // evaluation never ran because the budget expired first).
    std::vector<const LaneIbrRecorder *> graded(n, nullptr);
    std::atomic<std::uint64_t> cacheHits{0};

    if (recorders.size() < n) {
        recorders.reserve(n);
        while (recorders.size() < n)
            recorders.push_back(std::make_unique<LaneIbrRecorder>());
    }

    std::uint64_t decodeHits0, decodeMisses0;
    {
        std::lock_guard<std::mutex> lock(decodeMutex);
        decodeHits0 = decodeCache.hits();
        decodeMisses0 = decodeCache.misses();
    }
    const std::uint64_t arenaReuses0 = arena.reuses();

    auto evalOne = [&](std::size_t i) {
        // Same interruption contract as the scalar evaluation loop:
        // poll before each program, abandon the batch when expired.
        if (coreCfg.budget && coreCfg.budget->expired())
            throw Error::budget("batch evaluation interrupted");

        const isa::TestProgram &program = programs[i];
        const std::uint64_t hash = precomputedHashes
                                       ? precomputedHashes[i]
                                       : isa::contentHash(program);
        hashes[i] = hash;
        {
            std::lock_guard<std::mutex> lock(resultMutex);
            auto it = resultCache.find(hash);
            if (it != resultCache.end()) {
                out[i] = it->second;
                cacheHits.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }

        std::shared_ptr<const uarch::StaticProgram> decoded;
        {
            std::lock_guard<std::mutex> lock(decodeMutex);
            decoded = decodeCache.build(program);
        }

        auto ws = acquireWorkspace();
        LaneIbrRecorder &recorder = *recorders[i];
        recorder.reset();
        ws->cov.reset();
        ws->session.clear();
        ws->session.chain(recorder);
        // Storage analysers come from the descriptor table (IRF and
        // L1D first, in table order — the order the pre-session code
        // attached them in); the FUs are graded by the lane pass, so
        // the session-wide IbrArithModel is deliberately not chained.
        ws->cov.attachAnalyzers(ws->session);

        uarch::CoreArena::Lease core = arena.acquire(simCfg);
        const uarch::SimResult sim =
            core->run(program, ws->session, decoded.get());

        CoverageVector v;
        v.sim = sim;
        if (sim.exit == uarch::SimResult::Exit::Finished) {
            for (const StructureInfo &info : allStructures()) {
                if (!info.bitArray)
                    continue; // FU entries follow in the lane pass
                v.coverage[static_cast<std::size_t>(info.target)] =
                    ws->cov.storageCoverage(info.target);
            }
        }
        out[i] = v;
        graded[i] = &recorder;
        releaseWorkspace(std::move(ws));
    };

    if (parallel) {
        // Chunked: one queue/counter transaction per block of short
        // simulations instead of one per program.
        ThreadPool::global().parallelForChunked(n, 0, evalOne);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            evalOne(i);
    }

    // Cost accounting: every graded slot reports its program's cycle
    // count; cache hits are flagged but still priced (see EvalCost).
    std::uint64_t simCyclesDelta = 0;
    std::uint64_t cachedCyclesDelta = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool cached = !graded[i];
        if (costs)
            (*costs)[i] = EvalCost{out[i].sim.cycles, cached};
        if (cached)
            cachedCyclesDelta += out[i].sim.cycles;
        else
            simCyclesDelta += out[i].sim.cycles;
    }

    // Phase 2: lane-parallel IBR grading across the population, then
    // the shared scalar formula turns bit totals into ratios.
    LaneGradeStats laneStats;
    const std::vector<IbrTotals> totals =
        gradeIbrLanes(graded.data(), n, &laneStats);
    for (std::size_t i = 0; i < n; ++i) {
        if (!graded[i] ||
            out[i].sim.exit != uarch::SimResult::Exit::Finished)
            continue; // cached, or all-zero by the extract() contract
        for (const StructureInfo &info : allStructures()) {
            if (info.bitArray)
                continue;
            out[i].coverage[static_cast<std::size_t>(info.target)] =
                IbrArithModel::ratio(
                    info.circuit,
                    totals[i]
                        .bits[static_cast<std::size_t>(info.circuit)],
                    out[i].sim.cycles);
        }
    }

    {
        std::lock_guard<std::mutex> lock(resultMutex);
        for (std::size_t i = 0; i < n; ++i) {
            // Cancelled runs reflect the budget, not the program —
            // grading the same program later must re-simulate it.
            if (!graded[i] ||
                out[i].sim.exit == uarch::SimResult::Exit::Cancelled)
                continue;
            resultCache.emplace(hashes[i], out[i]);
        }
    }

    std::uint64_t decodeHits1, decodeMisses1;
    {
        std::lock_guard<std::mutex> lock(decodeMutex);
        decodeHits1 = decodeCache.hits();
        decodeMisses1 = decodeCache.misses();
    }

    const BatchMetrics &m = batchMetrics();
    telemetry::count(m.batches);
    telemetry::count(m.programs, n);
    telemetry::count(m.evalCacheHits, cacheHits.load());
    telemetry::count(m.decodeHits, decodeHits1 - decodeHits0);
    telemetry::count(m.decodeMisses, decodeMisses1 - decodeMisses0);
    telemetry::count(m.arenaReuses, arena.reuses() - arenaReuses0);
    telemetry::count(m.laneSweeps, laneStats.sweeps);
    telemetry::count(m.lanesFilled, laneStats.lanesFilled);
    telemetry::count(m.simCycles, simCyclesDelta);
    telemetry::count(m.cachedCycles, cachedCyclesDelta);

    {
        std::lock_guard<std::mutex> lock(statsMutex);
        cumulative.programs += n;
        cumulative.evalCacheHits += cacheHits.load();
        cumulative.decodeHits = decodeHits1;
        cumulative.decodeMisses = decodeMisses1;
        cumulative.arenaReuses = arena.reuses();
        cumulative.laneSweeps += laneStats.sweeps;
        cumulative.lanesFilled += laneStats.lanesFilled;
        cumulative.simCycles += simCyclesDelta;
        cumulative.cachedCycles += cachedCyclesDelta;
    }
    return out;
}

BatchStats
GenerationEvaluator::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    return cumulative;
}

std::vector<CoverageVector>
evaluateGeneration(const std::vector<isa::TestProgram> &programs,
                   const uarch::CoreConfig &config, bool parallel)
{
    GenerationEvaluator evaluator(config);
    return evaluator.evaluate(programs, parallel);
}

} // namespace harpo::coverage
