#include "isa/builder.hh"

#include <cstring>

#include "common/logging.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::isa
{

ProgramBuilder::ProgramBuilder(std::string name)
{
    program.name = std::move(name);
}

Operand
ProgramBuilder::gpr(int reg)
{
    Operand o;
    o.kind = OperandKind::Gpr;
    o.reg = static_cast<std::uint8_t>(reg);
    return o;
}

Operand
ProgramBuilder::xmm(int reg)
{
    Operand o;
    o.kind = OperandKind::Xmm;
    o.reg = static_cast<std::uint8_t>(reg);
    return o;
}

Operand
ProgramBuilder::imm(std::int64_t value)
{
    Operand o;
    o.kind = OperandKind::Imm;
    o.imm = value;
    return o;
}

Operand
ProgramBuilder::mem(int base, std::int32_t disp)
{
    Operand o;
    o.kind = OperandKind::Mem;
    o.mem.base = static_cast<std::uint8_t>(base);
    o.mem.disp = disp;
    return o;
}

Operand
ProgramBuilder::abs(std::int64_t addr)
{
    Operand o;
    o.kind = OperandKind::Mem;
    o.mem.ripRel = true;
    o.mem.disp = static_cast<std::int32_t>(addr);
    return o;
}

ProgramBuilder &
ProgramBuilder::i(const std::string &mnemonic, std::vector<Operand> ops)
{
    const InstrDesc *desc = isaTable().byMnemonic(mnemonic);
    panicIf(desc == nullptr, "unknown mnemonic: " + mnemonic);
    panicIf(static_cast<int>(ops.size()) != desc->numOperands,
            "operand count mismatch for " + mnemonic);
    Inst inst;
    inst.descId = desc->id;
    for (std::size_t k = 0; k < ops.size(); ++k) {
        panicIf(ops[k].kind != desc->operands[k].kind,
                "operand kind mismatch for " + mnemonic);
        inst.ops[k] = ops[k];
    }
    program.code.push_back(inst);
    return *this;
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labels.push_back(-1);
    return static_cast<Label>(labels.size() - 1);
}

ProgramBuilder::Label
ProgramBuilder::here()
{
    labels.push_back(static_cast<std::int64_t>(program.code.size()));
    return static_cast<Label>(labels.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    panicIf(label < 0 || label >= static_cast<Label>(labels.size()),
            "bind: bad label");
    panicIf(labels[label] != -1, "bind: label already bound");
    labels[label] = static_cast<std::int64_t>(program.code.size());
}

ProgramBuilder &
ProgramBuilder::br(const std::string &mnemonic, Label label)
{
    const InstrDesc *desc = isaTable().byMnemonic(mnemonic);
    panicIf(desc == nullptr || !desc->isBranch,
            "br: not a branch mnemonic: " + mnemonic);
    Inst inst;
    inst.descId = desc->id;
    inst.ops[0].kind = OperandKind::Imm;
    fixups.emplace_back(program.code.size(), label);
    program.code.push_back(inst);
    return *this;
}

void
ProgramBuilder::setGpr(int reg, std::uint64_t value)
{
    program.initGpr[static_cast<std::size_t>(reg)] = value;
}

void
ProgramBuilder::setXmm(int reg, std::uint64_t lo, std::uint64_t hi)
{
    program.initXmm[static_cast<std::size_t>(reg)] = {lo, hi};
}

void
ProgramBuilder::addRegion(std::uint64_t base, std::uint32_t size)
{
    program.regions.push_back({base, size});
}

void
ProgramBuilder::initMem(std::uint64_t addr, std::vector<std::uint8_t> bytes)
{
    program.memInit.push_back({addr, std::move(bytes)});
}

void
ProgramBuilder::initMemQwords(std::uint64_t addr,
                              const std::vector<std::uint64_t> &qwords)
{
    std::vector<std::uint8_t> bytes(qwords.size() * 8);
    std::memcpy(bytes.data(), qwords.data(), bytes.size());
    initMem(addr, std::move(bytes));
}

void
ProgramBuilder::addStack(std::uint64_t base, std::uint32_t size)
{
    addRegion(base, size);
    // Leave 16 bytes of headroom and keep 16-byte ABI alignment.
    setGpr(RSP, (base + size - 16) & ~0xFull);
}

void
ProgramBuilder::coreBegin()
{
    program.coreBegin = program.code.size();
}

void
ProgramBuilder::coreEnd()
{
    program.coreEnd = program.code.size();
}

TestProgram
ProgramBuilder::build()
{
    panicIf(built, "ProgramBuilder::build called twice");
    built = true;
    for (const auto &[index, label] : fixups) {
        panicIf(labels[label] < 0,
                "unbound label in program " + program.name);
        program.code[index].branchTarget =
            static_cast<std::int32_t>(labels[label]);
        program.code[index].ops[0].imm =
            labels[label] - static_cast<std::int64_t>(index) - 1;
    }
    if (program.coreEnd == 0 && program.coreBegin == 0)
        program.coreEnd = program.code.size();
    return std::move(program);
}

} // namespace harpo::isa
