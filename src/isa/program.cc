#include "isa/program.hh"

#include <cstring>

namespace harpo::isa
{

void
Memory::reset(const TestProgram &program)
{
    backing.clear();
    for (const auto &region : program.regions) {
        Backing b;
        b.region = region;
        b.bytes.assign(region.size, 0);
        backing.push_back(std::move(b));
    }
    for (const auto &init : program.memInit)
        write(init.addr, static_cast<unsigned>(init.bytes.size()),
              init.bytes.data());
}

bool
Memory::read(std::uint64_t addr, unsigned size, std::uint8_t *out) const
{
    for (const auto &b : backing) {
        if (b.region.contains(addr, size)) {
            std::memcpy(out, b.bytes.data() + (addr - b.region.base),
                        size);
            return true;
        }
    }
    return false;
}

bool
Memory::write(std::uint64_t addr, unsigned size, const std::uint8_t *in)
{
    for (auto &b : backing) {
        if (b.region.contains(addr, size)) {
            std::memcpy(b.bytes.data() + (addr - b.region.base), in,
                        size);
            return true;
        }
    }
    return false;
}

std::uint8_t *
Memory::bytePtr(std::uint64_t addr)
{
    for (auto &b : backing) {
        if (b.region.contains(addr, 1))
            return b.bytes.data() + (addr - b.region.base);
    }
    return nullptr;
}

} // namespace harpo::isa
