#include "isa/program.hh"

#include <algorithm>
#include <cstring>

#include "common/hash.hh"

namespace harpo::isa
{

std::uint64_t
contentHash(const TestProgram &program)
{
    Fnv1a h;
    h.addWord(program.code.size());
    for (const Inst &inst : program.code) {
        h.addWord(inst.descId);
        for (const Operand &op : inst.ops) {
            h.addWord(static_cast<std::uint64_t>(op.kind) |
                      (static_cast<std::uint64_t>(op.reg) << 8) |
                      (static_cast<std::uint64_t>(op.mem.base) << 16) |
                      (static_cast<std::uint64_t>(op.mem.ripRel) << 24));
            h.addWord(static_cast<std::uint64_t>(op.imm));
            h.addWord(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(op.mem.disp)));
        }
        h.addWord(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inst.branchTarget)));
    }
    for (const std::uint64_t v : program.initGpr)
        h.addWord(v);
    for (const auto &xmm : program.initXmm) {
        h.addWord(xmm[0]);
        h.addWord(xmm[1]);
    }
    h.addWord(program.regions.size());
    for (const MemRegion &r : program.regions) {
        h.addWord(r.base);
        h.addWord(r.size);
    }
    h.addWord(program.memInit.size());
    for (const MemInit &mi : program.memInit) {
        h.addWord(mi.addr);
        // Init blobs are tens of kilobytes; byte-serial FNV over them
        // would dominate the whole hash (and it runs once per program
        // per generation). Fold them word-wise and mix the digest.
        StateHash blob;
        blob.addBytes(mi.bytes.data(), mi.bytes.size());
        h.addWord(mi.bytes.size());
        h.addWord(blob.value());
    }
    h.addWord(program.coreBegin);
    h.addWord(program.coreEnd);
    return h.value();
}

void
Memory::reset(const TestProgram &program)
{
    // Recycled Memory objects (the batch evaluator reuses one core —
    // and thus one Memory — across a whole population) keep their
    // backing allocations when the region layout is unchanged, which
    // it is for every program cut from the same generator template.
    bool sameLayout = backing.size() == program.regions.size();
    for (std::size_t i = 0; sameLayout && i < backing.size(); ++i) {
        sameLayout = backing[i].region.base == program.regions[i].base &&
                     backing[i].region.size == program.regions[i].size;
    }
    if (sameLayout) {
        for (auto &b : backing)
            std::fill(b.bytes.begin(), b.bytes.end(), std::uint8_t{0});
    } else {
        backing.clear();
        for (const auto &region : program.regions) {
            Backing b;
            b.region = region;
            b.bytes.assign(region.size, 0);
            backing.push_back(std::move(b));
        }
    }
    for (const auto &init : program.memInit)
        write(init.addr, static_cast<unsigned>(init.bytes.size()),
              init.bytes.data());
}

bool
Memory::read(std::uint64_t addr, unsigned size, std::uint8_t *out) const
{
    for (const auto &b : backing) {
        if (b.region.contains(addr, size)) {
            std::memcpy(out, b.bytes.data() + (addr - b.region.base),
                        size);
            return true;
        }
    }
    return false;
}

bool
Memory::write(std::uint64_t addr, unsigned size, const std::uint8_t *in)
{
    for (auto &b : backing) {
        if (b.region.contains(addr, size)) {
            std::memcpy(b.bytes.data() + (addr - b.region.base), in,
                        size);
            return true;
        }
    }
    return false;
}

std::uint8_t *
Memory::bytePtr(std::uint64_t addr)
{
    for (auto &b : backing) {
        if (b.region.contains(addr, 1))
            return b.bytes.data() + (addr - b.region.base);
    }
    return nullptr;
}

} // namespace harpo::isa
