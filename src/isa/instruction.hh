/**
 * @file
 * Instruction descriptors and instruction instances for the HX86 ISA.
 *
 * An InstrDesc describes one *instruction variant*: a mnemonic plus a
 * specific operand signature (the paper treats the same mnemonic with
 * different operand types as distinct instructions for mutation
 * purposes). Inst is a decoded instance with concrete operands.
 */

#ifndef HARPOCRATES_ISA_INSTRUCTION_HH
#define HARPOCRATES_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

namespace harpo::isa
{

/** Mnemonic families. Condition-code variants share an Op and are
 *  distinguished by InstrDesc::cond. */
enum class Op : std::uint8_t
{
    Add, Adc, Sub, Sbb, And, Or, Xor, Cmp, Test,
    Mov, Movsxd, Lea, Neg, Not, Inc, Dec,
    Imul2,      ///< two-operand IMUL r, r/m
    Mul1,       ///< one-operand MUL (RDX:RAX = RAX * r)
    Imul1,      ///< one-operand IMUL (signed)
    Div, Idiv,  ///< one-operand divide (RDX:RAX / r)
    Shl, Shr, Sar, Rol, Ror, Rcl, Rcr,
    Xchg, Bswap, Popcnt, Lzcnt, Tzcnt,
    Cmovcc, Setcc,
    Push, Pop,
    Jmp, Jcc,
    Nop,
    // SSE double-precision subset.
    MovqXR,     ///< MOVQ xmm <- r64
    MovqRX,     ///< MOVQ r64 <- xmm
    Movsd,      ///< MOVSD xmm <- xmm / load / store (low lane)
    Movapd,     ///< MOVAPD xmm <- xmm / 16-byte load / store
    Addsd, Subsd, Mulsd, Divsd,
    Addpd, Subpd, Mulpd,
    Ucomisd,
    Cvtsi2sd, Cvttsd2si,
    Xorpd, Andpd, Orpd,
    Paddq, Psubq, Pxor,
    // Non-deterministic instructions (decodable; excluded by MuSeqGen).
    Rdtsc, Rdrand,
    NumOps,
};

/** Functional-unit class an instruction executes on. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< simple integer ops (latency 1)
    IntMul,     ///< integer multiplier
    IntDiv,     ///< integer divider (unpipelined)
    FpAdd,      ///< SSE FP adder
    FpMul,      ///< SSE FP multiplier
    FpDiv,      ///< SSE FP divider (unpipelined)
    FpCvt,      ///< int<->fp conversion
    SimdAlu,    ///< SIMD integer / FP logic ops
    MemRead,    ///< pure loads
    MemWrite,   ///< pure stores
    Branch,
    NoOp,
    NumClasses,
};

/** Gate-level circuit (if any) an instruction's computation drives.
 *  Used both for IBR accounting and for routing faulty-unit
 *  computations through the structural netlists. */
enum class FuCircuit : std::uint8_t
{
    None,
    IntAdd,
    IntMul,
    FpAdd,
    FpMul,
};

/** Condition codes (x86 subset). */
enum class Cond : std::uint8_t
{
    None,
    E, NE, L, GE, LE, G, B, AE, S, NS,
};

enum class OperandKind : std::uint8_t { None, Gpr, Xmm, Imm, Mem };

/** Static description of one operand slot of an instruction variant. */
struct OperandSpec
{
    OperandKind kind = OperandKind::None;
    std::uint8_t width = 0; ///< access width in bytes (1, 4, 8, 16)
    bool isRead = false;
    bool isWrite = false;
};

/** Static description of an instruction variant. */
struct InstrDesc
{
    std::uint16_t id = 0;       ///< index into the ISA table
    Op op = Op::Nop;
    Cond cond = Cond::None;
    std::string mnemonic;       ///< unique name incl. operand signature
    std::array<OperandSpec, 3> operands{};
    int numOperands = 0;

    OpClass opClass = OpClass::IntAlu;
    FuCircuit circuit = FuCircuit::None;
    int latency = 1;
    bool pipelined = true;

    /** Implicit integer architectural register reads/writes
     *  (excluding RFLAGS, which has its own flags below). */
    std::array<std::uint8_t, 3> implicitReads{};
    int numImplicitReads = 0;
    std::array<std::uint8_t, 3> implicitWrites{};
    int numImplicitWrites = 0;

    bool readsFlags = false;
    bool writesFlags = false;

    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;      ///< any control transfer
    bool isCondBranch = false;
    bool deterministic = true;  ///< false for RDTSC/RDRAND

    std::uint8_t opcode = 0;    ///< encoding: primary opcode byte

    /** Memory access width in bytes for loads/stores (0 if none). */
    std::uint8_t memWidth = 0;

    bool usesMemory() const { return isLoad || isStore; }
};

/** Memory operand reference. */
struct MemRef
{
    std::uint8_t base = 0;  ///< GPR index of the base register
    std::int32_t disp = 0;
    bool ripRel = false;    ///< absolute data address (RIP-relative model)
};

/** A concrete operand of a decoded instruction. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    std::uint8_t reg = 0;   ///< GPR/XMM index
    std::int64_t imm = 0;
    MemRef mem{};
};

/** A decoded instruction instance. */
struct Inst
{
    std::uint16_t descId = 0;
    std::array<Operand, 3> ops{};

    /** Resolved branch target as an instruction index (-1 if none). */
    std::int32_t branchTarget = -1;
};

/** Result status of functionally executing one instruction. */
enum class ExecStatus : std::uint8_t
{
    Ok,
    BadAddress,   ///< memory access outside every valid region
    DivFault,     ///< divide by zero or quotient overflow
};

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_INSTRUCTION_HH
