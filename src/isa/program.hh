/**
 * @file
 * TestProgram: a runnable functional test program.
 *
 * A program is an index-addressed instruction sequence plus its initial
 * architectural state and data regions (the role the C wrapper plays in
 * the paper: register/memory initialisation and output computation).
 * The [coreBegin, coreEnd) range marks the core test instructions the
 * coverage analyses are restricted to (the paper's gem5 ROI directives).
 */

#ifndef HARPOCRATES_ISA_PROGRAM_HH
#define HARPOCRATES_ISA_PROGRAM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace harpo::isa
{

/** A contiguous valid data region. Accesses outside all regions fault. */
struct MemRegion
{
    std::uint64_t base = 0;
    std::uint32_t size = 0;

    bool
    contains(std::uint64_t addr, unsigned bytes) const
    {
        // Overflow-safe: fuzzed programs produce addresses near 2^64.
        return addr >= base && bytes <= size &&
               addr - base <= static_cast<std::uint64_t>(size) - bytes;
    }
};

/** Initial contents for part of a region. */
struct MemInit
{
    std::uint64_t addr = 0;
    std::vector<std::uint8_t> bytes;
};

/** A complete runnable test program. */
struct TestProgram
{
    std::string name;

    std::vector<Inst> code;

    /** Initial GPR values (RSP is set by the wrapper to the stack top). */
    std::array<std::uint64_t, 16> initGpr{};
    /** Initial XMM values (lo, hi lanes). */
    std::array<std::array<std::uint64_t, 2>, 16> initXmm{};

    std::vector<MemRegion> regions;
    std::vector<MemInit> memInit;

    /** Core-test instruction range for coverage measurement. */
    std::size_t coreBegin = 0;
    std::size_t coreEnd = 0;

    std::size_t
    coreSize() const
    {
        return coreEnd > coreBegin ? coreEnd - coreBegin : 0;
    }
};

/**
 * Content hash over everything that determines a TestProgram's
 * simulated behaviour — instructions, initial architectural state,
 * memory layout and contents, core-test range — and nothing else.
 * The name is deliberately excluded: the evolution loop re-synthesizes
 * surviving elites under a new per-generation name, and caches keyed
 * by this hash (encoding cache, batch-evaluation result cache) must
 * recognise them as the same program.
 */
std::uint64_t contentHash(const TestProgram &program);

/** Byte-addressable sparse memory backed by the program's regions. */
class Memory
{
  public:
    /** Build backing storage for @p program's regions and apply its
     *  initial contents. */
    void reset(const TestProgram &program);

    /** Read @p size bytes; false if outside every region. */
    bool read(std::uint64_t addr, unsigned size, std::uint8_t *out) const;

    /** Write @p size bytes; false if outside every region. */
    bool write(std::uint64_t addr, unsigned size, const std::uint8_t *in);

    /** Mix all region contents into @p hasher (for run signatures). */
    template <typename Hasher>
    void
    hashInto(Hasher &hasher) const
    {
        for (const auto &r : backing) {
            hasher.addWord(r.region.base);
            hasher.addBytes(r.bytes.data(), r.bytes.size());
        }
    }

    /** Direct access for fault injection at a concrete address. */
    std::uint8_t *bytePtr(std::uint64_t addr);

    /** Total bytes of backing storage (for snapshot accounting). */
    std::size_t
    backingBytes() const
    {
        std::size_t n = 0;
        for (const auto &b : backing)
            n += b.bytes.size();
        return n;
    }

  private:
    struct Backing
    {
        MemRegion region;
        std::vector<std::uint8_t> bytes;
    };
    std::vector<Backing> backing;
};

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_PROGRAM_HH
