#include "isa/encoding.hh"

#include "common/logging.hh"
#include "isa/isa_table.hh"

namespace harpo::isa
{

namespace
{

void
putLe(std::vector<std::uint8_t> &out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getLe(const std::uint8_t *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::int64_t
signExtend(std::uint64_t v, unsigned bytes)
{
    const unsigned shift = 64 - 8 * bytes;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

unsigned
immBytes(const OperandSpec &spec)
{
    return spec.width; // 1, 4 or 8 bytes
}

} // namespace

std::size_t
encodedLength(const InstrDesc &desc)
{
    std::size_t len = 1; // opcode
    for (int i = 0; i < desc.numOperands; ++i) {
        const OperandSpec &spec = desc.operands[i];
        switch (spec.kind) {
          case OperandKind::Gpr:
          case OperandKind::Xmm:
            len += 1;
            break;
          case OperandKind::Imm:
            len += immBytes(spec);
            break;
          case OperandKind::Mem:
            len += 1 + 1 + 4; // mode, base, disp32
            break;
          default:
            break;
        }
    }
    return len;
}

void
encodeInst(const Inst &inst, std::size_t index,
           std::vector<std::uint8_t> &out)
{
    const InstrDesc &desc = isaTable().desc(inst.descId);
    out.push_back(desc.opcode);
    for (int i = 0; i < desc.numOperands; ++i) {
        const OperandSpec &spec = desc.operands[i];
        const Operand &op = inst.ops[i];
        switch (spec.kind) {
          case OperandKind::Gpr:
          case OperandKind::Xmm:
            out.push_back(op.reg);
            break;
          case OperandKind::Imm: {
            std::int64_t imm = op.imm;
            if (desc.isBranch) {
                // Branch displacement relative to the next instruction.
                imm = inst.branchTarget -
                      static_cast<std::int64_t>(index) - 1;
            }
            putLe(out, static_cast<std::uint64_t>(imm), immBytes(spec));
            break;
          }
          case OperandKind::Mem:
            out.push_back(op.mem.ripRel ? 1 : 0);
            out.push_back(op.mem.base);
            putLe(out, static_cast<std::uint32_t>(op.mem.disp), 4);
            break;
          default:
            break;
        }
    }
}

std::vector<std::uint8_t>
encodeProgram(const std::vector<Inst> &code)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < code.size(); ++i)
        encodeInst(code[i], i, out);
    return out;
}

DecodeResult
decodeProgram(const std::uint8_t *data, std::size_t len)
{
    DecodeResult result;
    std::size_t pos = 0;
    while (pos < len) {
        const InstrDesc *desc = isaTable().byOpcode(data[pos]);
        if (desc == nullptr)
            return result; // illegal opcode

        const std::size_t need = encodedLength(*desc);
        if (pos + need > len)
            return result; // truncated instruction

        Inst inst;
        inst.descId = desc->id;
        std::size_t p = pos + 1;
        bool bad = false;
        for (int i = 0; i < desc->numOperands && !bad; ++i) {
            const OperandSpec &spec = desc->operands[i];
            Operand &op = inst.ops[i];
            op.kind = spec.kind;
            switch (spec.kind) {
              case OperandKind::Gpr:
              case OperandKind::Xmm:
                op.reg = data[p] & 0x0F;
                p += 1;
                break;
              case OperandKind::Imm: {
                const unsigned nb = immBytes(spec);
                op.imm = signExtend(getLe(data + p, nb), nb);
                p += nb;
                break;
              }
              case OperandKind::Mem: {
                // Like x86's ModRM, the addressing-mode byte always
                // decodes (validity pressure comes from the opcode
                // space and from runtime address checks).
                op.mem.ripRel = (data[p] & 1) == 1;
                op.mem.base = data[p + 1] & 0x0F;
                op.mem.disp = static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(getLe(data + p + 2, 4)));
                p += 6;
                break;
              }
              default:
                break;
            }
        }
        if (bad)
            return result;

        if (desc->isBranch) {
            inst.branchTarget = static_cast<std::int32_t>(
                static_cast<std::int64_t>(result.code.size()) + 1 +
                inst.ops[0].imm);
        }
        result.code.push_back(inst);
        pos = p;
        result.consumed = pos;
    }
    result.ok = true;
    return result;
}

} // namespace harpo::isa
