#include "isa/emulator.hh"

#include "common/hash.hh"
#include "common/rng.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"
#include "isa/semantics.hh"

namespace harpo::isa
{

namespace
{

/** ExecContext over plain architectural state. */
class EmuContext : public ExecContext
{
  public:
    std::array<std::uint64_t, 16> gpr{};
    std::uint64_t flags = 0;
    std::array<std::array<std::uint64_t, 2>, 16> xmm{};
    Memory mem;
    bool taken = false;
    Rng nondet{0};

    std::uint64_t
    readIntReg(int arch_reg) override
    {
        return arch_reg == flagsReg ? flags : gpr[arch_reg];
    }

    void
    setIntReg(int arch_reg, std::uint64_t val) override
    {
        if (arch_reg == flagsReg)
            flags = val;
        else
            gpr[arch_reg] = val;
    }

    void
    readXmmReg(int arch_reg, std::uint64_t out[2]) override
    {
        out[0] = xmm[arch_reg][0];
        out[1] = xmm[arch_reg][1];
    }

    void
    setXmmReg(int arch_reg, const std::uint64_t val[2]) override
    {
        xmm[arch_reg][0] = val[0];
        xmm[arch_reg][1] = val[1];
    }

    bool
    readMem(std::uint64_t addr, unsigned size, std::uint8_t *data) override
    {
        return mem.read(addr, size, data);
    }

    bool
    writeMem(std::uint64_t addr, unsigned size,
             const std::uint8_t *data) override
    {
        return mem.write(addr, size, data);
    }

    void setTaken(bool t) override { taken = t; }

    std::uint64_t nondetValue() override { return nondet.next(); }
};

/** Replicates the RCR count computation of the semantics to detect the
 *  emulated gem5 assertion condition (rotate amount == width). */
bool
hitsRcrBug(const Inst &inst, const InstrDesc &desc, EmuContext &ctx)
{
    if (desc.op != Op::Rcr && desc.op != Op::Rcl)
        return false;
    const unsigned w = desc.operands[0].width * 8u;
    std::uint64_t rawCount;
    if (desc.numOperands >= 2 &&
        desc.operands[1].kind == OperandKind::Imm) {
        rawCount = static_cast<std::uint64_t>(inst.ops[1].imm);
    } else {
        rawCount = ctx.gpr[RCX];
    }
    const unsigned count = static_cast<unsigned>(rawCount & 63);
    return desc.op == Op::Rcr && count % (w + 1) == w;
}

} // namespace

std::uint64_t
computeSignature(const std::array<std::uint64_t, 16> &gpr,
                 std::uint64_t flags,
                 const std::array<std::array<std::uint64_t, 2>, 16> &xmm,
                 const Memory &mem)
{
    // StateHash, not Fnv1a: the memory image dominates this hash and
    // word-wise mixing is ~8x faster than byte-at-a-time FNV. The
    // value changes with the hasher, so persisted signatures carry a
    // format version (campaign journal kVersion).
    StateHash hasher;
    for (auto v : gpr)
        hasher.addWord(v);
    hasher.addWord(flags & flag::all);
    for (const auto &x : xmm) {
        hasher.addWord(x[0]);
        hasher.addWord(x[1]);
    }
    mem.hashInto(hasher);
    return hasher.value();
}

EmuResult
Emulator::run(const TestProgram &program, const Options &opts,
              FinalState *final_state)
{
    EmuContext ctx;
    ctx.gpr = program.initGpr;
    ctx.xmm = program.initXmm;
    ctx.mem.reset(program);
    ctx.nondet = Rng(opts.nondetSeed ^ 0xC0FFEE123456789ull);

    EmuResult result;
    std::size_t pc = 0;
    const std::size_t end = program.code.size();

    while (pc < end) {
        if (result.instsExecuted >= opts.stepLimit) {
            result.exit = EmuResult::Exit::StepLimit;
            return result;
        }
        const Inst &inst = program.code[pc];
        const InstrDesc &desc = isaTable().desc(inst.descId);

        if (opts.emulateRcrBug && hitsRcrBug(inst, desc, ctx)) {
            result.exit = EmuResult::Exit::EmulatorAssert;
            return result;
        }

        ctx.taken = false;
        const ExecStatus status = execute(inst, ctx);
        ++result.instsExecuted;

        if (status == ExecStatus::BadAddress) {
            result.exit = EmuResult::Exit::BadAddress;
            return result;
        }
        if (status == ExecStatus::DivFault) {
            result.exit = EmuResult::Exit::DivFault;
            return result;
        }

        if (coverageHook)
            coverageHook(inst, desc, ctx.flags, ctx.taken);

        if (desc.isBranch && ctx.taken) {
            const std::int64_t target = inst.branchTarget;
            if (target < 0 || target > static_cast<std::int64_t>(end)) {
                result.exit = EmuResult::Exit::BadBranch;
                return result;
            }
            pc = static_cast<std::size_t>(target);
        } else {
            ++pc;
        }
    }

    result.exit = EmuResult::Exit::Finished;
    result.signature =
        computeSignature(ctx.gpr, ctx.flags, ctx.xmm, ctx.mem);
    if (final_state) {
        final_state->gpr = ctx.gpr;
        final_state->flags = ctx.flags;
        final_state->xmm = ctx.xmm;
    }
    return result;
}

} // namespace harpo::isa
