/**
 * @file
 * The HX86 instruction table: every instruction variant the library
 * understands, with its operand signature, functional-unit class,
 * implicit operands and encoding.
 *
 * This plays the role of MicroProbe's "Architecture Module" in the
 * paper: a queryable, ISA-complete description that the code generator,
 * mutator, encoder and decoder all consult, guaranteeing that generated
 * programs are always architecturally valid.
 */

#ifndef HARPOCRATES_ISA_ISA_TABLE_HH
#define HARPOCRATES_ISA_ISA_TABLE_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace harpo::isa
{

/** Immutable singleton table of all InstrDescs. */
class IsaTable
{
  public:
    /** The process-wide table (built once, thread-safe). */
    static const IsaTable &instance();

    const InstrDesc &
    desc(std::uint16_t id) const
    {
        return descs.at(id);
    }

    std::size_t size() const { return descs.size(); }

    const std::vector<InstrDesc> &all() const { return descs; }

    /** Decode lookup: descriptor for an opcode byte, or nullptr. */
    const InstrDesc *byOpcode(std::uint8_t opcode) const;

    /** Lookup by unique mnemonic string, or nullptr. */
    const InstrDesc *byMnemonic(const std::string &name) const;

    /** Ids of all descriptors satisfying a predicate. */
    std::vector<std::uint16_t>
    select(const std::function<bool(const InstrDesc &)> &pred) const;

  private:
    IsaTable();

    std::vector<InstrDesc> descs;
    std::array<std::int32_t, 256> opcodeMap;
    std::unordered_map<std::string, std::uint16_t> mnemonicMap;
};

/** Convenience accessor for the singleton table. */
inline const IsaTable &
isaTable()
{
    return IsaTable::instance();
}

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_ISA_TABLE_HH
