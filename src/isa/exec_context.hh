/**
 * @file
 * The per-instruction execution interface.
 *
 * Instruction semantics are written once against this interface and are
 * reused by (a) the fast functional emulator (SiliFuzz proxy, golden
 * reference) and (b) the out-of-order core model, whose implementation
 * maps architectural accesses onto renamed physical registers and the
 * load/store queue. This mirrors gem5's ExecContext design.
 */

#ifndef HARPOCRATES_ISA_EXEC_CONTEXT_HH
#define HARPOCRATES_ISA_EXEC_CONTEXT_HH

#include <cstdint>

#include "isa/arith_model.hh"

namespace harpo::isa
{

/** Interface through which one instruction reads and writes state. */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Read an integer architectural register (incl. flagsReg). */
    virtual std::uint64_t readIntReg(int arch_reg) = 0;

    /** Write an integer architectural register (incl. flagsReg). */
    virtual void setIntReg(int arch_reg, std::uint64_t val) = 0;

    /** Read a 128-bit XMM register into @p out (lo, hi lanes). */
    virtual void readXmmReg(int arch_reg, std::uint64_t out[2]) = 0;

    /** Write a 128-bit XMM register from @p val (lo, hi lanes). */
    virtual void setXmmReg(int arch_reg, const std::uint64_t val[2]) = 0;

    /** Read @p size bytes at @p addr. Returns false if the address is
     *  not backed by any valid region (a crash condition). */
    virtual bool readMem(std::uint64_t addr, unsigned size,
                         std::uint8_t *data) = 0;

    /** Write @p size bytes at @p addr; false on invalid address. */
    virtual bool writeMem(std::uint64_t addr, unsigned size,
                          const std::uint8_t *data) = 0;

    /** Report the direction decision of a branch instruction. */
    virtual void setTaken(bool taken) { (void)taken; }

    /** Datapath model used for adder/multiplier computations. */
    virtual ArithModel &arith() { return ArithModel::functional(); }

    /** Entropy source for non-deterministic instructions (RDTSC etc.).
     *  Deterministic contexts return a fixed value. */
    virtual std::uint64_t nondetValue() { return 0; }
};

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_EXEC_CONTEXT_HH
