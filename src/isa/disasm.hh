/**
 * @file
 * Disassembly (pretty-printing) of HX86 instructions and programs,
 * for debugging, examples, and test-failure diagnostics.
 */

#ifndef HARPOCRATES_ISA_DISASM_HH
#define HARPOCRATES_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace harpo::isa
{

/** One instruction in Intel-ish syntax, e.g. "add rax, rbx". */
std::string disassemble(const Inst &inst);

/** A whole program, one numbered instruction per line. */
std::string disassemble(const TestProgram &program);

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_DISASM_HH
