#include "isa/arith_model.hh"

#include "common/softfloat.hh"

namespace harpo::isa
{

std::uint64_t
ArithModel::intAdd(std::uint64_t a, std::uint64_t b, bool carry_in,
                   bool &carry_out)
{
    const unsigned __int128 wide = static_cast<unsigned __int128>(a) + b +
                                   (carry_in ? 1 : 0);
    carry_out = (wide >> 64) != 0;
    return static_cast<std::uint64_t>(wide);
}

void
ArithModel::intMul(std::uint64_t a, std::uint64_t b, std::uint64_t &lo,
                   std::uint64_t &hi)
{
    const unsigned __int128 wide = static_cast<unsigned __int128>(a) * b;
    lo = static_cast<std::uint64_t>(wide);
    hi = static_cast<std::uint64_t>(wide >> 64);
}

std::uint64_t
ArithModel::fpAdd(std::uint64_t a, std::uint64_t b)
{
    return softAdd64(a, b);
}

std::uint64_t
ArithModel::fpMul(std::uint64_t a, std::uint64_t b)
{
    return softMul64(a, b);
}

ArithModel &
ArithModel::functional()
{
    static ArithModel model;
    return model;
}

} // namespace harpo::isa
