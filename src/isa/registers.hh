/**
 * @file
 * Architectural register definitions for the HX86 ISA.
 *
 * HX86 is the x86-64-flavoured ISA modelled by this library: 16 64-bit
 * general-purpose registers, 16 128-bit XMM registers, and an RFLAGS
 * register. RFLAGS is renamed like a GPR (architectural index 16 in the
 * integer register space), which both simplifies the out-of-order model
 * and makes flag state part of the integer physical register file — the
 * structure the paper targets with transient faults.
 */

#ifndef HARPOCRATES_ISA_REGISTERS_HH
#define HARPOCRATES_ISA_REGISTERS_HH

#include <cstdint>

namespace harpo::isa
{

/** General-purpose register indices (x86-64 numbering). */
enum Gpr : std::uint8_t
{
    RAX = 0, RCX = 1, RDX = 2, RBX = 3,
    RSP = 4, RBP = 5, RSI = 6, RDI = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11,
    R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/** Architectural index of RFLAGS in the integer register space. */
constexpr int flagsReg = 16;

/** Number of renameable integer architectural registers (GPRs+RFLAGS). */
constexpr int numIntArchRegs = 17;

/** Number of XMM architectural registers. */
constexpr int numXmmArchRegs = 16;

/** RFLAGS bit positions (matching x86). */
namespace flag
{
constexpr std::uint64_t cf = 1ull << 0;  ///< carry
constexpr std::uint64_t pf = 1ull << 2;  ///< parity (of low result byte)
constexpr std::uint64_t zf = 1ull << 6;  ///< zero
constexpr std::uint64_t sf = 1ull << 7;  ///< sign
constexpr std::uint64_t of = 1ull << 11; ///< overflow
constexpr std::uint64_t all = cf | pf | zf | sf | of;
} // namespace flag

/** Printable name of a GPR. */
const char *gprName(int reg);

/** Printable name of an integer architectural register (incl. RFLAGS). */
const char *intRegName(int reg);

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_REGISTERS_HH
