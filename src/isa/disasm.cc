#include "isa/disasm.hh"

#include <cstdio>
#include <sstream>

#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::isa
{

namespace
{

std::string
operandString(const InstrDesc &desc, const Inst &inst, int index)
{
    const OperandSpec &spec = desc.operands[index];
    const Operand &op = inst.ops[index];
    char buf[64];
    switch (spec.kind) {
      case OperandKind::Gpr:
        if (spec.width == 4) {
            std::snprintf(buf, sizeof(buf), "e%s",
                          gprName(op.reg) + 1);
            // e-prefix names only work for the legacy registers; use
            // rN d-suffix style for r8..r15.
            if (op.reg >= 8)
                std::snprintf(buf, sizeof(buf), "%sd",
                              gprName(op.reg));
            return buf;
        }
        return gprName(op.reg);
      case OperandKind::Xmm:
        std::snprintf(buf, sizeof(buf), "xmm%d", op.reg);
        return buf;
      case OperandKind::Imm:
        if (desc.isBranch) {
            std::snprintf(buf, sizeof(buf), "#%d", inst.branchTarget);
        } else {
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(op.imm));
        }
        return buf;
      case OperandKind::Mem:
        if (op.mem.ripRel) {
            std::snprintf(buf, sizeof(buf), "[0x%x]",
                          static_cast<unsigned>(op.mem.disp));
        } else if (op.mem.disp != 0) {
            std::snprintf(buf, sizeof(buf), "[%s%+d]",
                          gprName(op.mem.base), op.mem.disp);
        } else {
            std::snprintf(buf, sizeof(buf), "[%s]",
                          gprName(op.mem.base));
        }
        return buf;
      default:
        return "";
    }
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    const InstrDesc &desc = isaTable().desc(inst.descId);
    // The table mnemonic includes an operand-signature suffix
    // ("add r64, r64"); print only the mnemonic word, then concrete
    // operands.
    std::string name = desc.mnemonic.substr(
        0, desc.mnemonic.find(' '));
    std::string out = name;
    for (int i = 0; i < desc.numOperands; ++i) {
        out += i == 0 ? " " : ", ";
        out += operandString(desc, inst, i);
    }
    return out;
}

std::string
disassemble(const TestProgram &program)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "%5zu:  ", i);
        out << prefix << disassemble(program.code[i]) << "\n";
    }
    return out.str();
}

} // namespace harpo::isa
