/**
 * @file
 * Binary encoding of HX86 instructions.
 *
 * The variable-length encoding exists so the SiliFuzz-style baseline
 * can mutate *raw bytes* exactly as the real tool does: an opcode byte
 * (sparsely assigned, so many byte values are illegal), followed by
 * operand bytes whose layout is dictated by the descriptor's operand
 * signature. Branch displacements are instruction-index deltas relative
 * to the next instruction.
 */

#ifndef HARPOCRATES_ISA_ENCODING_HH
#define HARPOCRATES_ISA_ENCODING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace harpo::isa
{

/** Append the encoding of @p inst (at instruction index @p index, used
 *  for branch displacement) to @p out. */
void encodeInst(const Inst &inst, std::size_t index,
                std::vector<std::uint8_t> &out);

/** Encode a whole instruction sequence. */
std::vector<std::uint8_t> encodeProgram(const std::vector<Inst> &code);

/** Result of decoding a byte buffer. */
struct DecodeResult
{
    bool ok = false;            ///< every instruction decoded cleanly
    std::vector<Inst> code;     ///< instructions decoded before failure
    std::size_t consumed = 0;   ///< bytes consumed
};

/**
 * Decode a byte buffer into an instruction sequence. Decoding stops at
 * the first illegal opcode / malformed operand (ok=false), or at the
 * end of the buffer (ok=true; a trailing partial instruction is
 * rejected as illegal).
 */
DecodeResult decodeProgram(const std::uint8_t *data, std::size_t len);

/** Encoded length in bytes of an instruction of descriptor @p desc. */
std::size_t encodedLength(const InstrDesc &desc);

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_ENCODING_HH
