#include "isa/semantics.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/softfloat.hh"
#include "isa/isa_table.hh"
#include "isa/registers.hh"

namespace harpo::isa
{

namespace
{

std::uint64_t
widthMask(unsigned wbits)
{
    return wbits >= 64 ? ~0ull : (1ull << wbits) - 1;
}

/** ZF/SF/PF for a result of @p wbits bits. */
std::uint64_t
resultFlags(std::uint64_t res, unsigned wbits)
{
    std::uint64_t f = 0;
    res &= widthMask(wbits);
    if (res == 0)
        f |= flag::zf;
    if ((res >> (wbits - 1)) & 1)
        f |= flag::sf;
    if ((__builtin_popcount(static_cast<unsigned>(res & 0xFF)) & 1) == 0)
        f |= flag::pf;
    return f;
}

/** Per-instruction evaluation state shared by the op handlers. */
struct Ctx
{
    const Inst &inst;
    const InstrDesc &desc;
    ExecContext &xc;

    unsigned wbits;         ///< operand width in bits (operand 0)
    std::uint64_t flagsIn = 0;
    std::uint64_t flagsOut = 0;
    bool flagsValid = false;

    Ctx(const Inst &i, const InstrDesc &d, ExecContext &x)
        : inst(i), desc(d), xc(x)
    {
        wbits = d.numOperands > 0 ? d.operands[0].width * 8u : 64u;
        if (d.readsFlags)
            flagsIn = x.readIntReg(flagsReg);
    }

    std::uint64_t mask() const { return widthMask(wbits); }

    /** Read integer operand @p i (GPR or Imm), masked to its width. */
    std::uint64_t
    readInt(int i)
    {
        const Operand &o = inst.ops[i];
        const OperandSpec &spec = desc.operands[i];
        if (o.kind == OperandKind::Imm) {
            // Immediates are sign-extended to the operand width.
            return static_cast<std::uint64_t>(o.imm) &
                   widthMask(spec.width * 8u);
        }
        return xc.readIntReg(o.reg) & widthMask(spec.width * 8u);
    }

    /** Write integer register operand @p i. 32-bit writes zero-extend
     *  (the x86-64 rule); 64-bit writes are full. */
    void
    writeInt(int i, std::uint64_t val)
    {
        const OperandSpec &spec = desc.operands[i];
        xc.setIntReg(inst.ops[i].reg, val & widthMask(spec.width * 8u));
    }

    /** Set the output flags (full update of the modelled flag set). */
    void
    setFlags(std::uint64_t f)
    {
        flagsOut = f & flag::all;
        flagsValid = true;
    }

    /** Standard ALU flag update: CF/OF explicit, ZF/SF/PF from result. */
    void
    aluFlags(std::uint64_t res, bool cf, bool of)
    {
        setFlags(resultFlags(res, wbits) | (cf ? flag::cf : 0) |
                 (of ? flag::of : 0));
    }

    /** a + b + cin through the datapath adder, with CF/OF extraction. */
    std::uint64_t
    addCore(std::uint64_t a, std::uint64_t b, bool cin, bool &cf, bool &of)
    {
        a &= mask();
        b &= mask();
        bool cout = false;
        std::uint64_t sum = xc.arith().intAdd(a, b, cin, cout);
        cf = wbits >= 64 ? cout : ((sum >> wbits) & 1) != 0;
        sum &= mask();
        of = (((~(a ^ b)) & (a ^ sum)) >> (wbits - 1)) & 1;
        return sum;
    }

    /** a - b - borrow via the adder (a + ~b + !borrow). */
    std::uint64_t
    subCore(std::uint64_t a, std::uint64_t b, bool borrow, bool &cf,
            bool &of)
    {
        a &= mask();
        b &= mask();
        bool carry = false;
        std::uint64_t res =
            addCore(a, (~b) & mask(), !borrow, carry, of);
        cf = !carry;
        of = (((a ^ b) & (a ^ res)) >> (wbits - 1)) & 1;
        return res;
    }
};

/** Memory staging: at most one load and one store per instruction. */
struct MemOps
{
    bool hasLoad = false;
    bool hasStore = false;
    std::uint64_t addr = 0;
    unsigned size = 0;
    std::uint64_t loadData[2] = {0, 0};
};

bool
condSigned(Cond c, bool zf, bool sf, bool of, bool cf, bool pf)
{
    switch (c) {
      case Cond::E: return zf;
      case Cond::NE: return !zf;
      case Cond::L: return sf != of;
      case Cond::GE: return sf == of;
      case Cond::LE: return zf || (sf != of);
      case Cond::G: return !zf && (sf == of);
      case Cond::B: return cf;
      case Cond::AE: return !cf;
      case Cond::S: return sf;
      case Cond::NS: return !sf;
      default: (void)pf; return false;
    }
}

} // namespace

bool
evalCond(Cond cond, std::uint64_t flags)
{
    return condSigned(cond, flags & flag::zf, flags & flag::sf,
                      flags & flag::of, flags & flag::cf,
                      flags & flag::pf);
}

std::uint64_t
effectiveAddr(const MemRef &mem, ExecContext &xc)
{
    if (mem.ripRel)
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(mem.disp));
    return xc.readIntReg(mem.base) +
           static_cast<std::uint64_t>(static_cast<std::int64_t>(mem.disp));
}

ExecStatus
execute(const Inst &inst, ExecContext &xc)
{
    const InstrDesc &desc = isaTable().desc(inst.descId);
    Ctx c(inst, desc, xc);

    // ---- Stage 1: resolve the memory operand (if any) and perform the
    // load half up front, so op handlers see plain values.
    MemOps mem;
    int memIdx = -1;
    for (int i = 0; i < desc.numOperands; ++i) {
        if (inst.ops[i].kind == OperandKind::Mem &&
            desc.operands[i].kind == OperandKind::Mem) {
            memIdx = i;
            break;
        }
    }
    if (memIdx >= 0 && desc.op != Op::Lea) {
        mem.addr = effectiveAddr(inst.ops[memIdx].mem, xc);
        mem.size = desc.operands[memIdx].width;
        if (desc.operands[memIdx].isRead) {
            std::uint8_t buf[16] = {};
            if (!xc.readMem(mem.addr, mem.size, buf))
                return ExecStatus::BadAddress;
            std::memcpy(mem.loadData, buf, sizeof(buf));
            mem.hasLoad = true;
        }
        mem.hasStore = desc.operands[memIdx].isWrite;
    }

    // Integer value of operand i, transparently using loaded memory.
    auto srcInt = [&](int i) -> std::uint64_t {
        if (i == memIdx && mem.hasLoad)
            return mem.loadData[0] &
                   widthMask(desc.operands[i].width * 8u);
        return c.readInt(i);
    };
    // Write integer result to operand i (register or staged store).
    std::uint64_t storeData[2] = {0, 0};
    bool storePending = false;
    auto dstInt = [&](int i, std::uint64_t val) {
        if (i == memIdx) {
            storeData[0] = val;
            storePending = true;
        } else {
            c.writeInt(i, val);
        }
    };
    auto srcXmm = [&](int i, std::uint64_t out[2]) {
        if (i == memIdx && mem.hasLoad) {
            out[0] = mem.loadData[0];
            out[1] = mem.size == 16 ? mem.loadData[1] : 0;
        } else {
            xc.readXmmReg(inst.ops[i].reg, out);
        }
    };

    const std::uint64_t fin = c.flagsIn;
    const bool cfIn = (fin & flag::cf) != 0;
    ExecStatus status = ExecStatus::Ok;
    bool cf = false, of = false;

    switch (desc.op) {
      case Op::Add: {
        const std::uint64_t r = c.addCore(srcInt(0), srcInt(1), false,
                                          cf, of);
        dstInt(0, r);
        c.aluFlags(r, cf, of);
        break;
      }
      case Op::Adc: {
        const std::uint64_t r = c.addCore(srcInt(0), srcInt(1), cfIn,
                                          cf, of);
        dstInt(0, r);
        c.aluFlags(r, cf, of);
        break;
      }
      case Op::Sub: {
        const std::uint64_t r = c.subCore(srcInt(0), srcInt(1), false,
                                          cf, of);
        dstInt(0, r);
        c.aluFlags(r, cf, of);
        break;
      }
      case Op::Sbb: {
        const std::uint64_t r = c.subCore(srcInt(0), srcInt(1), cfIn,
                                          cf, of);
        dstInt(0, r);
        c.aluFlags(r, cf, of);
        break;
      }
      case Op::Cmp: {
        const std::uint64_t r = c.subCore(srcInt(0), srcInt(1), false,
                                          cf, of);
        c.aluFlags(r, cf, of);
        break;
      }
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Test: {
        const std::uint64_t a = srcInt(0);
        const std::uint64_t b = srcInt(1);
        std::uint64_t r;
        if (desc.op == Op::Or)
            r = a | b;
        else if (desc.op == Op::Xor)
            r = a ^ b;
        else
            r = a & b; // And / Test
        if (desc.op != Op::Test)
            dstInt(0, r);
        c.aluFlags(r, false, false);
        break;
      }
      case Op::Mov: {
        if (desc.isStore && !desc.isLoad) {
            dstInt(0, srcInt(1));
        } else if (desc.isLoad) {
            c.writeInt(0, mem.loadData[0] &
                              widthMask(desc.operands[1].width * 8u));
        } else {
            dstInt(0, srcInt(1));
        }
        break;
      }
      case Op::Movsxd: {
        const std::int64_t v =
            static_cast<std::int32_t>(srcInt(1) & 0xFFFFFFFF);
        c.writeInt(0, static_cast<std::uint64_t>(v));
        break;
      }
      case Op::Lea: {
        c.writeInt(0, effectiveAddr(inst.ops[1].mem, xc));
        break;
      }
      case Op::Neg: {
        const std::uint64_t a = srcInt(0);
        const std::uint64_t r = c.subCore(0, a, false, cf, of);
        dstInt(0, r);
        // NEG: CF set iff the operand was nonzero.
        c.aluFlags(r, a != 0, of);
        break;
      }
      case Op::Not: {
        dstInt(0, (~srcInt(0)) & c.mask());
        break;
      }
      case Op::Inc:
      case Op::Dec: {
        std::uint64_t r;
        if (desc.op == Op::Inc)
            r = c.addCore(srcInt(0), 1, false, cf, of);
        else
            r = c.subCore(srcInt(0), 1, false, cf, of);
        dstInt(0, r);
        // INC/DEC preserve CF.
        c.setFlags(resultFlags(r, c.wbits) | (fin & flag::cf) |
                   (of ? flag::of : 0));
        break;
      }
      case Op::Imul2: {
        const std::uint64_t m = c.mask();
        const std::uint64_t a = srcInt(0) & m;
        const std::uint64_t b = srcInt(1) & m;
        // Sign-extend to 64 bits, multiply through the unit, and check
        // whether the signed product fits the operand width.
        const unsigned w = c.wbits;
        const std::uint64_t sa = w == 64
            ? a : static_cast<std::uint64_t>(static_cast<std::int64_t>(
                      static_cast<std::int32_t>(a)));
        const std::uint64_t sb = w == 64
            ? b : static_cast<std::uint64_t>(static_cast<std::int64_t>(
                      static_cast<std::int32_t>(b)));
        std::uint64_t lo, hi;
        xc.arith().intMul(sa, sb, lo, hi);
        // Signed adjustment for the high half.
        hi -= (static_cast<std::int64_t>(sa) < 0 ? sb : 0);
        hi -= (static_cast<std::int64_t>(sb) < 0 ? sa : 0);
        const std::uint64_t r = lo & m;
        bool overflow;
        if (w == 64) {
            overflow = hi != (static_cast<std::int64_t>(lo) < 0
                                  ? ~0ull : 0ull);
        } else {
            const std::int64_t full = static_cast<std::int64_t>(lo);
            overflow = full != static_cast<std::int32_t>(full);
        }
        dstInt(0, r);
        c.aluFlags(r, overflow, overflow);
        break;
      }
      case Op::Mul1:
      case Op::Imul1: {
        const std::uint64_t m = c.mask();
        const std::uint64_t a = xc.readIntReg(RAX) & m;
        const std::uint64_t b = srcInt(0) & m;
        std::uint64_t lo, hi;
        if (desc.op == Op::Mul1) {
            xc.arith().intMul(a, b, lo, hi);
            if (c.wbits == 32) {
                hi = (lo >> 32) & 0xFFFFFFFF;
                lo &= 0xFFFFFFFF;
            }
            cf = hi != 0;
        } else {
            const std::uint64_t sa = c.wbits == 64
                ? a : static_cast<std::uint64_t>(static_cast<std::int64_t>(
                          static_cast<std::int32_t>(a)));
            const std::uint64_t sb = c.wbits == 64
                ? b : static_cast<std::uint64_t>(static_cast<std::int64_t>(
                          static_cast<std::int32_t>(b)));
            xc.arith().intMul(sa, sb, lo, hi);
            hi -= (static_cast<std::int64_t>(sa) < 0 ? sb : 0);
            hi -= (static_cast<std::int64_t>(sb) < 0 ? sa : 0);
            if (c.wbits == 32) {
                hi = (lo >> 32) & 0xFFFFFFFF;
                lo &= 0xFFFFFFFF;
                cf = static_cast<std::int64_t>(
                         static_cast<std::int32_t>(lo)) !=
                     static_cast<std::int64_t>(
                         (static_cast<std::uint64_t>(hi) << 32) | lo);
            } else {
                cf = hi != (static_cast<std::int64_t>(lo) < 0
                                ? ~0ull : 0ull);
            }
        }
        xc.setIntReg(RAX, lo);
        xc.setIntReg(RDX, hi);
        c.aluFlags(lo, cf, cf);
        break;
      }
      case Op::Div:
      case Op::Idiv: {
        const std::uint64_t m = c.mask();
        const std::uint64_t divisor = srcInt(0) & m;
        if (divisor == 0)
            return ExecStatus::DivFault;
        const std::uint64_t loIn = xc.readIntReg(RAX) & m;
        const std::uint64_t hiIn = xc.readIntReg(RDX) & m;
        std::uint64_t q, r;
        if (desc.op == Op::Div) {
            const unsigned __int128 dividend =
                (static_cast<unsigned __int128>(hiIn) << c.wbits) | loIn;
            const unsigned __int128 wideQ = dividend / divisor;
            if (wideQ > m)
                return ExecStatus::DivFault;
            q = static_cast<std::uint64_t>(wideQ);
            r = static_cast<std::uint64_t>(dividend % divisor);
        } else {
            const __int128 dividend = static_cast<__int128>(
                (static_cast<unsigned __int128>(hiIn) << c.wbits) | loIn)
                << (128 - 2 * c.wbits) >> (128 - 2 * c.wbits);
            const std::int64_t sdiv = c.wbits == 64
                ? static_cast<std::int64_t>(divisor)
                : static_cast<std::int32_t>(divisor);
            const __int128 qq = dividend / sdiv;
            const __int128 rr = dividend % sdiv;
            const __int128 qmin = -(static_cast<__int128>(1)
                                    << (c.wbits - 1));
            const __int128 qmax = (static_cast<__int128>(1)
                                   << (c.wbits - 1)) - 1;
            if (qq < qmin || qq > qmax)
                return ExecStatus::DivFault;
            q = static_cast<std::uint64_t>(qq) & m;
            r = static_cast<std::uint64_t>(rr) & m;
        }
        xc.setIntReg(RAX, q);
        xc.setIntReg(RDX, r);
        // x86 leaves flags undefined after divide; model: cleared.
        c.setFlags(0);
        break;
      }
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Rol:
      case Op::Ror:
      case Op::Rcl:
      case Op::Rcr: {
        const unsigned w = c.wbits;
        const std::uint64_t a = srcInt(0);
        std::uint64_t rawCount;
        if (desc.numOperands >= 2 &&
            desc.operands[1].kind == OperandKind::Imm) {
            rawCount = static_cast<std::uint64_t>(inst.ops[1].imm);
        } else {
            rawCount = xc.readIntReg(RCX);
        }
        // HX86 quirk (mirrors x86's narrow-operand rotates): RCL/RCR
        // mask the count by 63 regardless of operand width, so a 32-bit
        // rotate-through-carry can be asked to rotate by exactly the
        // register size -- the corner case behind the gem5 RCR bug the
        // paper reports in section VI-D.
        const bool throughCarry =
            desc.op == Op::Rcl || desc.op == Op::Rcr;
        const unsigned count = static_cast<unsigned>(
            rawCount & ((w == 64 || throughCarry) ? 63 : 31));
        std::uint64_t r = a;
        bool newCf = cfIn;
        bool newOf = (fin & flag::of) != 0;
        bool updateAll = true;
        if (count == 0) {
            // Flags unchanged; result unchanged.
            c.setFlags(fin);
            dstInt(0, a);
            break;
        }
        switch (desc.op) {
          case Op::Shl:
            r = (count >= w) ? 0 : (a << count) & c.mask();
            newCf = count <= w && ((a >> (w - count)) & 1);
            newOf = ((r >> (w - 1)) & 1) != (newCf ? 1u : 0u);
            break;
          case Op::Shr:
            r = (count >= w) ? 0 : a >> count;
            newCf = count <= w && ((a >> (count - 1)) & 1);
            newOf = (a >> (w - 1)) & 1;
            break;
          case Op::Sar: {
            const std::int64_t sa = w == 64
                ? static_cast<std::int64_t>(a)
                : static_cast<std::int32_t>(a);
            r = static_cast<std::uint64_t>(
                    sa >> (count >= w ? w - 1 : count)) & c.mask();
            newCf = (static_cast<std::uint64_t>(sa) >>
                     (count >= w ? w - 1 : count - 1)) & 1;
            newOf = false;
            break;
          }
          case Op::Rol: {
            const unsigned cc = count % w;
            r = cc == 0 ? a
                        : ((a << cc) | (a >> (w - cc))) & c.mask();
            newCf = r & 1;
            newOf = (((r >> (w - 1)) & 1) != (newCf ? 1u : 0u));
            break;
          }
          case Op::Ror: {
            const unsigned cc = count % w;
            r = cc == 0 ? a
                        : ((a >> cc) | (a << (w - cc))) & c.mask();
            newCf = (r >> (w - 1)) & 1;
            newOf = (((r >> (w - 1)) & 1) != ((r >> (w - 2)) & 1));
            break;
          }
          case Op::Rcl:
          case Op::Rcr: {
            // Rotate through carry: a (w+1)-bit rotation of CF:value.
            // The corner case count == w (rotate amount equal to the
            // register size) is exactly the one that crashed gem5's RCR
            // emulation (section VI-D of the paper).
            const unsigned cc = count % (w + 1);
            unsigned __int128 wide =
                (static_cast<unsigned __int128>(cfIn ? 1 : 0) << w) |
                static_cast<unsigned __int128>(a);
            if (cc != 0) {
                if (desc.op == Op::Rcl) {
                    wide = ((wide << cc) | (wide >> (w + 1 - cc)));
                } else {
                    wide = ((wide >> cc) | (wide << (w + 1 - cc)));
                }
            }
            r = static_cast<std::uint64_t>(wide) & c.mask();
            newCf = (wide >> w) & 1;
            if (desc.op == Op::Rcl)
                newOf = (((r >> (w - 1)) & 1) != (newCf ? 1u : 0u));
            else
                newOf = (((r >> (w - 1)) & 1) != ((r >> (w - 2)) & 1));
            break;
          }
          default:
            break;
        }
        dstInt(0, r);
        if (updateAll) {
            c.setFlags(resultFlags(r, w) | (newCf ? flag::cf : 0) |
                       (newOf ? flag::of : 0));
        }
        break;
      }
      case Op::Xchg: {
        const std::uint64_t a = srcInt(0);
        const std::uint64_t b = srcInt(1);
        c.writeInt(0, b);
        c.writeInt(1, a);
        break;
      }
      case Op::Bswap: {
        dstInt(0, __builtin_bswap64(srcInt(0)));
        break;
      }
      case Op::Popcnt: {
        const std::uint64_t a = srcInt(1);
        const std::uint64_t r =
            static_cast<std::uint64_t>(__builtin_popcountll(a));
        c.writeInt(0, r);
        c.setFlags(a == 0 ? flag::zf : 0);
        break;
      }
      case Op::Lzcnt: {
        const std::uint64_t a = srcInt(1);
        const std::uint64_t r =
            a == 0 ? 64 : static_cast<std::uint64_t>(__builtin_clzll(a));
        c.writeInt(0, r);
        c.setFlags((a == 0 ? flag::cf : 0) | (r == 0 ? flag::zf : 0));
        break;
      }
      case Op::Tzcnt: {
        const std::uint64_t a = srcInt(1);
        const std::uint64_t r =
            a == 0 ? 64 : static_cast<std::uint64_t>(__builtin_ctzll(a));
        c.writeInt(0, r);
        c.setFlags((a == 0 ? flag::cf : 0) | (r == 0 ? flag::zf : 0));
        break;
      }
      case Op::Cmovcc: {
        const std::uint64_t r =
            evalCond(desc.cond, fin) ? srcInt(1) : srcInt(0);
        c.writeInt(0, r);
        break;
      }
      case Op::Setcc: {
        c.writeInt(0, evalCond(desc.cond, fin) ? 1 : 0);
        break;
      }
      case Op::Push: {
        const std::uint64_t rsp = xc.readIntReg(RSP) - 8;
        std::uint64_t v;
        if (desc.operands[0].kind == OperandKind::Imm) {
            v = static_cast<std::uint64_t>(inst.ops[0].imm);
        } else {
            v = xc.readIntReg(inst.ops[0].reg);
        }
        std::uint8_t buf[8];
        std::memcpy(buf, &v, 8);
        if (!xc.writeMem(rsp, 8, buf))
            return ExecStatus::BadAddress;
        xc.setIntReg(RSP, rsp);
        break;
      }
      case Op::Pop: {
        const std::uint64_t rsp = xc.readIntReg(RSP);
        std::uint8_t buf[8];
        if (!xc.readMem(rsp, 8, buf))
            return ExecStatus::BadAddress;
        std::uint64_t v;
        std::memcpy(&v, buf, 8);
        c.writeInt(0, v);
        xc.setIntReg(RSP, rsp + 8);
        break;
      }
      case Op::Jmp: {
        xc.setTaken(true);
        break;
      }
      case Op::Jcc: {
        xc.setTaken(evalCond(desc.cond, fin));
        break;
      }
      case Op::Nop:
        break;

      // ---- SSE ----
      case Op::MovqXR: {
        const std::uint64_t v[2] = {xc.readIntReg(inst.ops[1].reg), 0};
        xc.setXmmReg(inst.ops[0].reg, v);
        break;
      }
      case Op::MovqRX: {
        std::uint64_t v[2];
        xc.readXmmReg(inst.ops[1].reg, v);
        xc.setIntReg(inst.ops[0].reg, v[0]);
        break;
      }
      case Op::Movsd: {
        if (desc.isStore) {
            std::uint64_t v[2];
            xc.readXmmReg(inst.ops[1].reg, v);
            storeData[0] = v[0];
            storePending = true;
        } else if (desc.isLoad) {
            const std::uint64_t v[2] = {mem.loadData[0], 0};
            xc.setXmmReg(inst.ops[0].reg, v);
        } else {
            std::uint64_t d[2], s[2];
            xc.readXmmReg(inst.ops[0].reg, d);
            xc.readXmmReg(inst.ops[1].reg, s);
            const std::uint64_t v[2] = {s[0], d[1]};
            xc.setXmmReg(inst.ops[0].reg, v);
        }
        break;
      }
      case Op::Movapd: {
        if (desc.isStore) {
            std::uint64_t v[2];
            xc.readXmmReg(inst.ops[1].reg, v);
            storeData[0] = v[0];
            storeData[1] = v[1];
            storePending = true;
        } else if (desc.isLoad) {
            xc.setXmmReg(inst.ops[0].reg, mem.loadData);
        } else {
            std::uint64_t s[2];
            xc.readXmmReg(inst.ops[1].reg, s);
            xc.setXmmReg(inst.ops[0].reg, s);
        }
        break;
      }
      case Op::Addsd:
      case Op::Subsd:
      case Op::Mulsd:
      case Op::Divsd: {
        std::uint64_t d[2], s[2];
        xc.readXmmReg(inst.ops[0].reg, d);
        srcXmm(1, s);
        std::uint64_t r;
        if (desc.op == Op::Addsd)
            r = xc.arith().fpAdd(d[0], s[0]);
        else if (desc.op == Op::Subsd)
            r = xc.arith().fpAdd(d[0], s[0] ^ 0x8000000000000000ull);
        else if (desc.op == Op::Mulsd)
            r = xc.arith().fpMul(d[0], s[0]);
        else
            r = softDiv64(d[0], s[0]);
        const std::uint64_t v[2] = {r, d[1]};
        xc.setXmmReg(inst.ops[0].reg, v);
        break;
      }
      case Op::Addpd:
      case Op::Subpd:
      case Op::Mulpd: {
        std::uint64_t d[2], s[2];
        xc.readXmmReg(inst.ops[0].reg, d);
        srcXmm(1, s);
        std::uint64_t v[2];
        for (int lane = 0; lane < 2; ++lane) {
            if (desc.op == Op::Addpd)
                v[lane] = xc.arith().fpAdd(d[lane], s[lane]);
            else if (desc.op == Op::Subpd)
                v[lane] = xc.arith().fpAdd(
                    d[lane], s[lane] ^ 0x8000000000000000ull);
            else
                v[lane] = xc.arith().fpMul(d[lane], s[lane]);
        }
        xc.setXmmReg(inst.ops[0].reg, v);
        break;
      }
      case Op::Ucomisd: {
        std::uint64_t a[2], b[2];
        xc.readXmmReg(inst.ops[0].reg, a);
        xc.readXmmReg(inst.ops[1].reg, b);
        const int cmp = softCompare64(a[0], b[0]);
        std::uint64_t f = 0;
        if (cmp == 2)
            f = flag::zf | flag::pf | flag::cf; // unordered
        else if (cmp == 0)
            f = flag::zf;
        else if (cmp < 0)
            f = flag::cf;
        c.setFlags(f);
        break;
      }
      case Op::Cvtsi2sd: {
        std::uint64_t d[2];
        xc.readXmmReg(inst.ops[0].reg, d);
        const std::uint64_t v[2] = {
            softFromInt64(
                static_cast<std::int64_t>(xc.readIntReg(inst.ops[1].reg))),
            d[1]};
        xc.setXmmReg(inst.ops[0].reg, v);
        break;
      }
      case Op::Cvttsd2si: {
        std::uint64_t s[2];
        xc.readXmmReg(inst.ops[1].reg, s);
        xc.setIntReg(inst.ops[0].reg,
                     static_cast<std::uint64_t>(softToInt64Trunc(s[0])));
        break;
      }
      case Op::Xorpd:
      case Op::Andpd:
      case Op::Orpd:
      case Op::Pxor:
      case Op::Paddq:
      case Op::Psubq: {
        std::uint64_t d[2], s[2];
        xc.readXmmReg(inst.ops[0].reg, d);
        xc.readXmmReg(inst.ops[1].reg, s);
        std::uint64_t v[2];
        for (int lane = 0; lane < 2; ++lane) {
            switch (desc.op) {
              case Op::Xorpd:
              case Op::Pxor: v[lane] = d[lane] ^ s[lane]; break;
              case Op::Andpd: v[lane] = d[lane] & s[lane]; break;
              case Op::Orpd: v[lane] = d[lane] | s[lane]; break;
              case Op::Paddq: v[lane] = d[lane] + s[lane]; break;
              default: v[lane] = d[lane] - s[lane]; break;
            }
        }
        xc.setXmmReg(inst.ops[0].reg, v);
        break;
      }

      case Op::Rdtsc: {
        const std::uint64_t t = xc.nondetValue();
        xc.setIntReg(RAX, t & 0xFFFFFFFF);
        xc.setIntReg(RDX, t >> 32);
        break;
      }
      case Op::Rdrand: {
        c.writeInt(0, xc.nondetValue());
        c.setFlags(flag::cf);
        break;
      }

      default:
        panic("unimplemented opcode in semantics: " + desc.mnemonic);
    }

    // ---- Stage 3: commit the staged store and the flags result.
    if (storePending && mem.hasStore) {
        std::uint8_t buf[16];
        std::memcpy(buf, storeData, sizeof(buf));
        if (!xc.writeMem(mem.addr, mem.size, buf))
            return ExecStatus::BadAddress;
    }
    if (desc.writesFlags) {
        // Every flag writer must produce a value (possibly the merged
        // input flags) so the renamed RFLAGS destination is defined.
        xc.setIntReg(flagsReg, c.flagsValid ? c.flagsOut
                                            : (fin & flag::all));
    }

    return status;
}

} // namespace harpo::isa
