/**
 * @file
 * Fast in-order functional emulator for HX86 programs.
 *
 * Three roles, mirroring the paper's infrastructure:
 *  - the *software proxy* the SiliFuzz-style baseline fuzzes (with a
 *    software-coverage observation hook);
 *  - the determinism filter (two runs with different non-determinism
 *    seeds must agree);
 *  - a golden architectural reference cross-checked against the
 *    out-of-order core model in tests.
 *
 * It can optionally emulate the gem5 v22 RCR instruction-emulation bug
 * (an internal assertion when the rotate amount equals the register
 * width) that Harpocrates-generated programs exposed (paper VI-D).
 */

#ifndef HARPOCRATES_ISA_EMULATOR_HH
#define HARPOCRATES_ISA_EMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>

#include "isa/program.hh"

namespace harpo::isa
{

/** Outcome of an emulated run. */
struct EmuResult
{
    enum class Exit : std::uint8_t
    {
        Finished,       ///< ran off the end of the program normally
        BadAddress,     ///< memory access outside every region
        DivFault,       ///< divide fault
        BadBranch,      ///< control transfer outside the program
        StepLimit,      ///< did not finish within the step budget
        EmulatorAssert, ///< emulator-internal assert (RCR bug emulation)
    };

    Exit exit = Exit::Finished;
    std::uint64_t signature = 0;   ///< architectural output signature
    std::uint64_t instsExecuted = 0;

    bool crashed() const { return exit != Exit::Finished; }
};

/** In-order functional emulator. */
class Emulator
{
  public:
    struct Options
    {
        std::uint64_t stepLimit = 2'000'000;
        /** Seed for RDTSC/RDRAND values; two runs with different seeds
         *  detect non-deterministic programs. */
        std::uint64_t nondetSeed = 0;
        /** Emulate the gem5 v22.0 RCR assertion bug. */
        bool emulateRcrBug = false;
    };

    /** Per-instruction observation for software-coverage collection:
     *  (instruction, descriptor, RFLAGS after execution, branch taken).
     */
    using CoverageHook = std::function<void(
        const Inst &, const InstrDesc &, std::uint64_t, bool)>;

    void setCoverageHook(CoverageHook hook) { coverageHook = hook; }

    /** Final architectural state of a run (for inspection in tests and
     *  for SiliFuzz snapshot end-state recording). */
    struct FinalState
    {
        std::array<std::uint64_t, 16> gpr{};
        std::uint64_t flags = 0;
        std::array<std::array<std::uint64_t, 2>, 16> xmm{};
    };

    /** Run @p program to completion (or fault / step limit). If
     *  @p final_state is non-null it receives the end state. */
    EmuResult run(const TestProgram &program, const Options &opts,
                  FinalState *final_state = nullptr);

    /** Run with default options. */
    EmuResult
    run(const TestProgram &program)
    {
        return run(program, Options());
    }

  private:
    CoverageHook coverageHook;
};

/**
 * Compute the architectural output signature from final register and
 * memory state. Shared by the emulator and the out-of-order core so
 * their signatures are directly comparable.
 */
std::uint64_t
computeSignature(const std::array<std::uint64_t, 16> &gpr,
                 std::uint64_t flags,
                 const std::array<std::array<std::uint64_t, 2>, 16> &xmm,
                 const Memory &mem);

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_EMULATOR_HH
