#include "isa/registers.hh"

namespace harpo::isa
{

static const char *const gprNames[16] = {
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
};

const char *
gprName(int reg)
{
    if (reg >= 0 && reg < 16)
        return gprNames[reg];
    return "r?";
}

const char *
intRegName(int reg)
{
    if (reg == flagsReg)
        return "rflags";
    return gprName(reg);
}

} // namespace harpo::isa
