/**
 * @file
 * ProgramBuilder: a small assembler-style DSL for writing HX86 test
 * programs by hand. Used for the OpenDCDiag-like and MiBench-like
 * baseline kernels and in examples/tests.
 */

#ifndef HARPOCRATES_ISA_BUILDER_HH
#define HARPOCRATES_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace harpo::isa
{

/** Fluent builder producing a TestProgram. */
class ProgramBuilder
{
  public:
    using Label = int;

    explicit ProgramBuilder(std::string name);

    // ---- Operand factories ----
    static Operand gpr(int reg);
    static Operand xmm(int reg);
    static Operand imm(std::int64_t value);
    /** base-register + displacement memory operand. */
    static Operand mem(int base, std::int32_t disp = 0);
    /** RIP-relative (absolute data address) memory operand. */
    static Operand abs(std::int64_t addr);

    // ---- Code emission ----
    /** Emit an instruction by its table mnemonic; panics on unknown
     *  mnemonics or operand-count mismatch (these are programming
     *  errors in kernel definitions). */
    ProgramBuilder &i(const std::string &mnemonic,
                      std::vector<Operand> ops = {});

    /** Create an unbound label for a forward branch. */
    Label newLabel();
    /** Label bound to the current position (for backward branches). */
    Label here();
    /** Bind a forward label to the current position. */
    void bind(Label label);
    /** Emit a branch instruction targeting @p label. */
    ProgramBuilder &br(const std::string &mnemonic, Label label);

    // ---- Initial state ----
    void setGpr(int reg, std::uint64_t value);
    void setXmm(int reg, std::uint64_t lo, std::uint64_t hi = 0);
    void addRegion(std::uint64_t base, std::uint32_t size);
    void initMem(std::uint64_t addr, std::vector<std::uint8_t> bytes);
    void initMemQwords(std::uint64_t addr,
                       const std::vector<std::uint64_t> &qwords);
    /** Add a stack region and point RSP at its top. */
    void addStack(std::uint64_t base, std::uint32_t size);

    /** Mark the start/end of the core test region (ROI). */
    void coreBegin();
    void coreEnd();

    std::size_t size() const { return program.code.size(); }

    /** Resolve labels and return the finished program. A program with
     *  unbound labels panics. If no core region was marked, the whole
     *  program is the core. */
    TestProgram build();

  private:
    TestProgram program;
    std::vector<std::int64_t> labels;    // position or -1 if unbound
    std::vector<std::pair<std::size_t, Label>> fixups;
    bool built = false;
};

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_BUILDER_HH
