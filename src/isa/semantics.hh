/**
 * @file
 * Functional semantics of every HX86 instruction, written once against
 * the ExecContext interface.
 */

#ifndef HARPOCRATES_ISA_SEMANTICS_HH
#define HARPOCRATES_ISA_SEMANTICS_HH

#include "isa/exec_context.hh"
#include "isa/instruction.hh"

namespace harpo::isa
{

/**
 * Execute one instruction against @p xc.
 *
 * Register/memory reads and writes, branch direction, and datapath
 * computations all flow through the context. Branch *targets* are not
 * consumed here: the caller combines setTaken() with Inst::branchTarget.
 *
 * @return Ok, or the fault the instruction raised.
 */
ExecStatus execute(const Inst &inst, ExecContext &xc);

/** Evaluate an x86 condition code against an RFLAGS value. */
bool evalCond(Cond cond, std::uint64_t flags);

/** Effective address of a memory operand (no validity check). */
std::uint64_t effectiveAddr(const MemRef &mem, ExecContext &xc);

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_SEMANTICS_HH
