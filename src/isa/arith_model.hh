/**
 * @file
 * The arithmetic datapath abstraction.
 *
 * Instruction semantics never compute adder/multiplier results directly;
 * they ask an ArithModel. The default model is fast and functional. The
 * fault-injection engine substitutes a model that routes the targeted
 * unit's operations through a gate-level netlist carrying a stuck-at
 * fault, and the IBR coverage analyser substitutes an observing model
 * that records the exact input bits delivered to each unit.
 */

#ifndef HARPOCRATES_ISA_ARITH_MODEL_HH
#define HARPOCRATES_ISA_ARITH_MODEL_HH

#include <cstdint>

namespace harpo::isa
{

/** Computational model of the four gate-level functional units. */
class ArithModel
{
  public:
    virtual ~ArithModel() = default;

    /** 64-bit integer addition with carry-in; @p carry_out receives the
     *  carry out of bit 63. Subtraction is expressed by the caller as
     *  a + ~b + 1, exactly as the hardware adder is used. */
    virtual std::uint64_t intAdd(std::uint64_t a, std::uint64_t b,
                                 bool carry_in, bool &carry_out);

    /** Unsigned 64x64 -> 128-bit multiplication. */
    virtual void intMul(std::uint64_t a, std::uint64_t b,
                        std::uint64_t &lo, std::uint64_t &hi);

    /** fp64 addition under the FTZ/RNE datapath model (see softfloat). */
    virtual std::uint64_t fpAdd(std::uint64_t a, std::uint64_t b);

    /** fp64 multiplication under the FTZ/RNE datapath model. */
    virtual std::uint64_t fpMul(std::uint64_t a, std::uint64_t b);

    /** Shared fast functional instance. */
    static ArithModel &functional();
};

/**
 * Base class for *observing* ArithModel decorators (IBR accounting,
 * operand-trace recording): holds the wrapped model and lets an
 * evaluation session re-point it when several observers are composed
 * into one chain over the executing model (uarch::ProbeSet::chain).
 *
 * Subclasses forward every operation to base() after observing it, so
 * a chain of observers is value-transparent: the numbers the core sees
 * are exactly those of the innermost (executing) model.
 */
class ChainedArithModel : public ArithModel
{
  public:
    explicit ChainedArithModel(ArithModel *base_model = nullptr)
        : baseModel(base_model ? base_model : &functional())
    {}

    /** Re-point the wrapped model (null restores the functional
     *  model). Used when composing observers into a session chain. */
    void
    rebase(ArithModel *base_model)
    {
        baseModel = base_model ? base_model : &functional();
    }

    /** The wrapped model this observer forwards to. */
    ArithModel &base() const { return *baseModel; }

  private:
    ArithModel *baseModel;
};

} // namespace harpo::isa

#endif // HARPOCRATES_ISA_ARITH_MODEL_HH
