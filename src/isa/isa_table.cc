#include "isa/isa_table.hh"

#include "common/logging.hh"
#include "isa/registers.hh"

namespace harpo::isa
{

namespace
{

OperandSpec
gprOp(std::uint8_t width, bool r, bool w)
{
    return {OperandKind::Gpr, width, r, w};
}

OperandSpec
xmmOp(std::uint8_t width, bool r, bool w)
{
    return {OperandKind::Xmm, width, r, w};
}

OperandSpec
immOp(std::uint8_t width)
{
    return {OperandKind::Imm, width, true, false};
}

OperandSpec
memOp(std::uint8_t width, bool r, bool w)
{
    return {OperandKind::Mem, width, r, w};
}

/** Incremental builder collecting InstrDescs. */
class TableBuilder
{
  public:
    InstrDesc &
    add(Op op, const std::string &mnemonic, OpClass cls,
        std::initializer_list<OperandSpec> ops)
    {
        InstrDesc d;
        d.op = op;
        d.mnemonic = mnemonic;
        d.opClass = cls;
        int i = 0;
        for (const auto &spec : ops)
            d.operands[i++] = spec;
        d.numOperands = i;
        // Derive load/store from memory operand specs.
        for (int k = 0; k < d.numOperands; ++k) {
            const auto &o = d.operands[k];
            if (o.kind == OperandKind::Mem) {
                d.memWidth = o.width;
                if (o.isRead)
                    d.isLoad = true;
                if (o.isWrite)
                    d.isStore = true;
            }
        }
        descs.push_back(d);
        return descs.back();
    }

    std::vector<InstrDesc> take() { return std::move(descs); }

  private:
    std::vector<InstrDesc> descs;
};

/** All binary ALU mnemonics sharing the same form set. */
struct AluDef
{
    Op op;
    const char *name;
    FuCircuit circuit;
    bool dstIsRead;   ///< false only for plain MOV-like semantics
    bool dstIsWritten;///< false for CMP/TEST (compare only)
    bool readsCarry;  ///< ADC/SBB
};

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::E: return "e";
      case Cond::NE: return "ne";
      case Cond::L: return "l";
      case Cond::GE: return "ge";
      case Cond::LE: return "le";
      case Cond::G: return "g";
      case Cond::B: return "b";
      case Cond::AE: return "ae";
      case Cond::S: return "s";
      case Cond::NS: return "ns";
      default: return "";
    }
}

std::vector<InstrDesc>
buildDescs()
{
    TableBuilder b;

    const AluDef aluDefs[] = {
        {Op::Add, "add", FuCircuit::IntAdd, true, true, false},
        {Op::Adc, "adc", FuCircuit::IntAdd, true, true, true},
        {Op::Sub, "sub", FuCircuit::IntAdd, true, true, false},
        {Op::Sbb, "sbb", FuCircuit::IntAdd, true, true, true},
        {Op::And, "and", FuCircuit::None, true, true, false},
        {Op::Or, "or", FuCircuit::None, true, true, false},
        {Op::Xor, "xor", FuCircuit::None, true, true, false},
        {Op::Cmp, "cmp", FuCircuit::IntAdd, true, false, false},
    };

    for (const auto &def : aluDefs) {
        const std::string n = def.name;
        const bool dr = def.dstIsRead;
        const bool dw = def.dstIsWritten;
        auto finish = [&](InstrDesc &d) {
            d.circuit = def.circuit;
            d.writesFlags = true;
            d.readsFlags = def.readsCarry;
        };
        finish(b.add(def.op, n + " r64, r64", OpClass::IntAlu,
                     {gprOp(8, dr, dw), gprOp(8, true, false)}));
        finish(b.add(def.op, n + " r64, imm32", OpClass::IntAlu,
                     {gprOp(8, dr, dw), immOp(4)}));
        finish(b.add(def.op, n + " r64, imm8", OpClass::IntAlu,
                     {gprOp(8, dr, dw), immOp(1)}));
        finish(b.add(def.op, n + " r32, r32", OpClass::IntAlu,
                     {gprOp(4, dr, dw), gprOp(4, true, false)}));
        finish(b.add(def.op, n + " r32, imm32", OpClass::IntAlu,
                     {gprOp(4, dr, dw), immOp(4)}));
        finish(b.add(def.op, n + " r64, m64", OpClass::IntAlu,
                     {gprOp(8, dr, dw), memOp(8, true, false)}));
        finish(b.add(def.op, n + " m64, r64", OpClass::IntAlu,
                     {memOp(8, true, dw), gprOp(8, true, false)}));
        finish(b.add(def.op, n + " r32, m32", OpClass::IntAlu,
                     {gprOp(4, dr, dw), memOp(4, true, false)}));
    }

    // TEST: like AND but never writes the destination.
    for (auto *forms : {"r64, r64", "r64, imm32", "r32, r32"}) {
        InstrDesc &d =
            std::string(forms) == "r64, imm32"
                ? b.add(Op::Test, std::string("test ") + forms,
                        OpClass::IntAlu, {gprOp(8, true, false), immOp(4)})
                : b.add(Op::Test, std::string("test ") + forms,
                        OpClass::IntAlu,
                        {gprOp(std::string(forms)[1] == '6' ? 8 : 4, true,
                               false),
                         gprOp(std::string(forms)[1] == '6' ? 8 : 4, true,
                               false)});
        d.writesFlags = true;
    }

    // MOV family.
    b.add(Op::Mov, "mov r64, r64", OpClass::IntAlu,
          {gprOp(8, false, true), gprOp(8, true, false)});
    b.add(Op::Mov, "mov r64, imm64", OpClass::IntAlu,
          {gprOp(8, false, true), immOp(8)});
    b.add(Op::Mov, "mov r32, imm32", OpClass::IntAlu,
          {gprOp(4, false, true), immOp(4)});
    b.add(Op::Mov, "mov r32, r32", OpClass::IntAlu,
          {gprOp(4, false, true), gprOp(4, true, false)});
    b.add(Op::Mov, "mov r64, m64", OpClass::MemRead,
          {gprOp(8, false, true), memOp(8, true, false)});
    b.add(Op::Mov, "mov m64, r64", OpClass::MemWrite,
          {memOp(8, false, true), gprOp(8, true, false)});
    b.add(Op::Mov, "mov r32, m32", OpClass::MemRead,
          {gprOp(4, false, true), memOp(4, true, false)});
    b.add(Op::Mov, "mov m32, r32", OpClass::MemWrite,
          {memOp(4, false, true), gprOp(4, true, false)});
    b.add(Op::Mov, "mov r64, m8", OpClass::MemRead,
          {gprOp(8, false, true), memOp(1, true, false)});
    b.add(Op::Mov, "mov m8, r64", OpClass::MemWrite,
          {memOp(1, false, true), gprOp(8, true, false)});

    b.add(Op::Movsxd, "movsxd r64, r32", OpClass::IntAlu,
          {gprOp(8, false, true), gprOp(4, true, false)});
    b.add(Op::Lea, "lea r64, m", OpClass::IntAlu,
          {gprOp(8, false, true),
           // LEA computes the address but never accesses memory.
           OperandSpec{OperandKind::Mem, 8, false, false}});

    // Unary ALU.
    for (auto [op, name, circuit, flags] :
         {std::tuple{Op::Neg, "neg", FuCircuit::IntAdd, true},
          std::tuple{Op::Not, "not", FuCircuit::None, false},
          std::tuple{Op::Inc, "inc", FuCircuit::IntAdd, true},
          std::tuple{Op::Dec, "dec", FuCircuit::IntAdd, true}}) {
        for (int w : {8, 4}) {
            InstrDesc &d = b.add(
                op,
                std::string(name) + (w == 8 ? " r64" : " r32"),
                OpClass::IntAlu,
                {gprOp(static_cast<std::uint8_t>(w), true, true)});
            d.circuit = circuit;
            d.writesFlags = flags;
            // INC/DEC preserve CF: read-modify-write of RFLAGS.
            d.readsFlags = (op == Op::Inc || op == Op::Dec);
        }
    }

    // Two-operand IMUL.
    for (auto *form : {"r64, r64", "r32, r32", "r64, m64"}) {
        const bool mem = std::string(form).find('m') != std::string::npos;
        const std::uint8_t w = std::string(form)[1] == '6' ? 8 : 4;
        InstrDesc &d = b.add(
            Op::Imul2, std::string("imul ") + form, OpClass::IntMul,
            mem ? std::initializer_list<OperandSpec>{gprOp(w, true, true),
                                                     memOp(w, true, false)}
                : std::initializer_list<OperandSpec>{gprOp(w, true, true),
                                                     gprOp(w, true, false)});
        d.circuit = FuCircuit::IntMul;
        d.latency = 3;
        d.writesFlags = true;
    }

    // One-operand multiply/divide with implicit RAX/RDX.
    for (auto [op, name, cls, circuit, lat, pip] :
         {std::tuple{Op::Mul1, "mul", OpClass::IntMul, FuCircuit::IntMul,
                     3, true},
          std::tuple{Op::Imul1, "imul1", OpClass::IntMul, FuCircuit::IntMul,
                     3, true},
          std::tuple{Op::Div, "div", OpClass::IntDiv, FuCircuit::None, 20,
                     false},
          std::tuple{Op::Idiv, "idiv", OpClass::IntDiv, FuCircuit::None, 20,
                     false}}) {
        for (int w : {8, 4}) {
            InstrDesc &d = b.add(
                op, std::string(name) + (w == 8 ? " r64" : " r32"), cls,
                {gprOp(static_cast<std::uint8_t>(w), true, false)});
            d.circuit = circuit;
            d.latency = lat;
            d.pipelined = pip;
            d.writesFlags = true;
            if (op == Op::Div || op == Op::Idiv) {
                d.implicitReads = {RDX, RAX};
                d.numImplicitReads = 2;
            } else {
                d.implicitReads = {RAX};
                d.numImplicitReads = 1;
            }
            d.implicitWrites = {RAX, RDX};
            d.numImplicitWrites = 2;
        }
    }

    // Shifts and rotates.
    for (auto [op, name] :
         {std::tuple{Op::Shl, "shl"}, std::tuple{Op::Shr, "shr"},
          std::tuple{Op::Sar, "sar"}, std::tuple{Op::Rol, "rol"},
          std::tuple{Op::Ror, "ror"}, std::tuple{Op::Rcl, "rcl"},
          std::tuple{Op::Rcr, "rcr"}}) {
        const bool throughCarry = (op == Op::Rcl || op == Op::Rcr);
        InstrDesc &d1 = b.add(op, std::string(name) + " r64, imm8",
                              OpClass::IntAlu,
                              {gprOp(8, true, true), immOp(1)});
        d1.writesFlags = true;
        d1.readsFlags = true; // partial flag update merges with old RFLAGS
        InstrDesc &d2 = b.add(op, std::string(name) + " r64, cl",
                              OpClass::IntAlu, {gprOp(8, true, true)});
        d2.writesFlags = true;
        d2.readsFlags = true;
        d2.implicitReads = {RCX};
        d2.numImplicitReads = 1;
        InstrDesc &d3 = b.add(op, std::string(name) + " r32, imm8",
                              OpClass::IntAlu,
                              {gprOp(4, true, true), immOp(1)});
        d3.writesFlags = true;
        d3.readsFlags = true;
        (void)throughCarry;
    }

    // Misc integer.
    b.add(Op::Xchg, "xchg r64, r64", OpClass::IntAlu,
          {gprOp(8, true, true), gprOp(8, true, true)});
    b.add(Op::Bswap, "bswap r64", OpClass::IntAlu, {gprOp(8, true, true)});
    for (auto [op, name] : {std::tuple{Op::Popcnt, "popcnt"},
                            std::tuple{Op::Lzcnt, "lzcnt"},
                            std::tuple{Op::Tzcnt, "tzcnt"}}) {
        InstrDesc &d =
            b.add(op, std::string(name) + " r64, r64", OpClass::IntAlu,
                  {gprOp(8, false, true), gprOp(8, true, false)});
        d.writesFlags = true;
    }

    // CMOVcc.
    for (Cond c : {Cond::E, Cond::NE, Cond::L, Cond::GE, Cond::LE, Cond::G,
                   Cond::B, Cond::AE}) {
        InstrDesc &d =
            b.add(Op::Cmovcc,
                  std::string("cmov") + condName(c) + " r64, r64",
                  OpClass::IntAlu,
                  {gprOp(8, true, true), gprOp(8, true, false)});
        d.cond = c;
        d.readsFlags = true;
    }

    // SETcc (writes a full 0/1 qword: 8-bit subregister renaming is not
    // modelled; documented deviation).
    for (Cond c :
         {Cond::E, Cond::NE, Cond::L, Cond::G, Cond::B, Cond::AE}) {
        InstrDesc &d = b.add(Op::Setcc,
                             std::string("set") + condName(c) + " r64",
                             OpClass::IntAlu, {gprOp(8, false, true)});
        d.cond = c;
        d.readsFlags = true;
    }

    // Stack.
    {
        InstrDesc &d = b.add(Op::Push, "push r64", OpClass::MemWrite,
                             {gprOp(8, true, false)});
        d.implicitReads = {RSP};
        d.numImplicitReads = 1;
        d.implicitWrites = {RSP};
        d.numImplicitWrites = 1;
        d.isStore = true;
        d.memWidth = 8;
    }
    {
        InstrDesc &d =
            b.add(Op::Push, "push imm32", OpClass::MemWrite, {immOp(4)});
        d.implicitReads = {RSP};
        d.numImplicitReads = 1;
        d.implicitWrites = {RSP};
        d.numImplicitWrites = 1;
        d.isStore = true;
        d.memWidth = 8;
    }
    {
        InstrDesc &d = b.add(Op::Pop, "pop r64", OpClass::MemRead,
                             {gprOp(8, false, true)});
        d.implicitReads = {RSP};
        d.numImplicitReads = 1;
        d.implicitWrites = {RSP};
        d.numImplicitWrites = 1;
        d.isLoad = true;
        d.memWidth = 8;
    }

    // Control flow. Branch displacement is an instruction-index delta.
    {
        InstrDesc &d =
            b.add(Op::Jmp, "jmp rel32", OpClass::Branch, {immOp(4)});
        d.isBranch = true;
    }
    for (Cond c : {Cond::E, Cond::NE, Cond::L, Cond::GE, Cond::LE, Cond::G,
                   Cond::B, Cond::AE, Cond::S, Cond::NS}) {
        InstrDesc &d =
            b.add(Op::Jcc, std::string("j") + condName(c) + " rel32",
                  OpClass::Branch, {immOp(4)});
        d.cond = c;
        d.isBranch = true;
        d.isCondBranch = true;
        d.readsFlags = true;
    }

    b.add(Op::Nop, "nop", OpClass::NoOp, {});

    // SSE double-precision subset.
    b.add(Op::MovqXR, "movq xmm, r64", OpClass::SimdAlu,
          {xmmOp(16, false, true), gprOp(8, true, false)});
    b.add(Op::MovqRX, "movq r64, xmm", OpClass::SimdAlu,
          {gprOp(8, false, true), xmmOp(16, true, false)});
    b.add(Op::Movsd, "movsd xmm, xmm", OpClass::SimdAlu,
          {xmmOp(16, true, true), xmmOp(16, true, false)});
    b.add(Op::Movsd, "movsd xmm, m64", OpClass::MemRead,
          {xmmOp(16, false, true), memOp(8, true, false)});
    b.add(Op::Movsd, "movsd m64, xmm", OpClass::MemWrite,
          {memOp(8, false, true), xmmOp(16, true, false)});
    b.add(Op::Movapd, "movapd xmm, xmm", OpClass::SimdAlu,
          {xmmOp(16, false, true), xmmOp(16, true, false)});
    b.add(Op::Movapd, "movapd xmm, m128", OpClass::MemRead,
          {xmmOp(16, false, true), memOp(16, true, false)});
    b.add(Op::Movapd, "movapd m128, xmm", OpClass::MemWrite,
          {memOp(16, false, true), xmmOp(16, true, false)});

    for (auto [op, name, cls, circuit, lat, pip] :
         {std::tuple{Op::Addsd, "addsd", OpClass::FpAdd, FuCircuit::FpAdd,
                     3, true},
          std::tuple{Op::Subsd, "subsd", OpClass::FpAdd, FuCircuit::FpAdd,
                     3, true},
          std::tuple{Op::Mulsd, "mulsd", OpClass::FpMul, FuCircuit::FpMul,
                     4, true},
          std::tuple{Op::Divsd, "divsd", OpClass::FpDiv, FuCircuit::None,
                     12, false}}) {
        for (bool mem : {false, true}) {
            InstrDesc &d = b.add(
                op, std::string(name) + (mem ? " xmm, m64" : " xmm, xmm"),
                cls,
                mem ? std::initializer_list<OperandSpec>{
                          xmmOp(16, true, true), memOp(8, true, false)}
                    : std::initializer_list<OperandSpec>{
                          xmmOp(16, true, true), xmmOp(16, true, false)});
            d.circuit = circuit;
            d.latency = lat;
            d.pipelined = pip;
        }
    }
    for (auto [op, name, cls, circuit, lat] :
         {std::tuple{Op::Addpd, "addpd", OpClass::FpAdd, FuCircuit::FpAdd,
                     3},
          std::tuple{Op::Subpd, "subpd", OpClass::FpAdd, FuCircuit::FpAdd,
                     3},
          std::tuple{Op::Mulpd, "mulpd", OpClass::FpMul, FuCircuit::FpMul,
                     4}}) {
        for (bool mem : {false, true}) {
            InstrDesc &d = b.add(
                op, std::string(name) + (mem ? " xmm, m128" : " xmm, xmm"),
                cls,
                mem ? std::initializer_list<OperandSpec>{
                          xmmOp(16, true, true), memOp(16, true, false)}
                    : std::initializer_list<OperandSpec>{
                          xmmOp(16, true, true), xmmOp(16, true, false)});
            d.circuit = circuit;
            d.latency = lat;
        }
    }
    {
        InstrDesc &d = b.add(Op::Ucomisd, "ucomisd xmm, xmm",
                             OpClass::FpAdd,
                             {xmmOp(16, true, false), xmmOp(16, true, false)});
        d.latency = 3;
        d.writesFlags = true;
    }
    {
        InstrDesc &d = b.add(Op::Cvtsi2sd, "cvtsi2sd xmm, r64",
                             OpClass::FpCvt,
                             {xmmOp(16, true, true), gprOp(8, true, false)});
        d.latency = 3;
    }
    {
        InstrDesc &d = b.add(Op::Cvttsd2si, "cvttsd2si r64, xmm",
                             OpClass::FpCvt,
                             {gprOp(8, false, true), xmmOp(16, true, false)});
        d.latency = 3;
    }
    for (auto [op, name] : {std::tuple{Op::Xorpd, "xorpd"},
                            std::tuple{Op::Andpd, "andpd"},
                            std::tuple{Op::Orpd, "orpd"},
                            std::tuple{Op::Paddq, "paddq"},
                            std::tuple{Op::Psubq, "psubq"},
                            std::tuple{Op::Pxor, "pxor"}}) {
        b.add(op, std::string(name) + " xmm, xmm", OpClass::SimdAlu,
              {xmmOp(16, true, true), xmmOp(16, true, false)});
    }

    // Non-deterministic instructions: present in the ISA (so the
    // SiliFuzz-style fuzzer can stumble on them) but flagged so
    // MuSeqGen's generator excludes them and the determinism filter
    // rejects snapshots containing them.
    {
        InstrDesc &d = b.add(Op::Rdtsc, "rdtsc", OpClass::IntAlu, {});
        d.implicitWrites = {RAX, RDX};
        d.numImplicitWrites = 2;
        d.deterministic = false;
    }
    {
        InstrDesc &d = b.add(Op::Rdrand, "rdrand r64", OpClass::IntAlu,
                             {gprOp(8, false, true)});
        d.writesFlags = true;
        d.deterministic = false;
    }

    return b.take();
}

} // namespace

IsaTable::IsaTable()
{
    descs = buildDescs();
    panicIf(descs.size() > 230, "opcode space too small for ISA table");

    opcodeMap.fill(-1);
    for (std::size_t i = 0; i < descs.size(); ++i) {
        descs[i].id = static_cast<std::uint16_t>(i);
        // Spread opcodes over the byte space with an odd multiplier
        // (bijective mod 256), leaving the remaining values invalid.
        const std::uint8_t opcode =
            static_cast<std::uint8_t>((i * 7 + 3) & 0xFF);
        descs[i].opcode = opcode;
        panicIf(opcodeMap[opcode] != -1, "duplicate opcode assignment");
        opcodeMap[opcode] = static_cast<std::int32_t>(i);
        panicIf(mnemonicMap.count(descs[i].mnemonic) != 0,
                "duplicate mnemonic: " + descs[i].mnemonic);
        mnemonicMap[descs[i].mnemonic] = descs[i].id;
    }
}

const IsaTable &
IsaTable::instance()
{
    static const IsaTable table;
    return table;
}

const InstrDesc *
IsaTable::byOpcode(std::uint8_t opcode) const
{
    const std::int32_t id = opcodeMap[opcode];
    return id < 0 ? nullptr : &descs[static_cast<std::size_t>(id)];
}

const InstrDesc *
IsaTable::byMnemonic(const std::string &name) const
{
    auto it = mnemonicMap.find(name);
    return it == mnemonicMap.end() ? nullptr : &descs[it->second];
}

std::vector<std::uint16_t>
IsaTable::select(const std::function<bool(const InstrDesc &)> &pred) const
{
    std::vector<std::uint16_t> out;
    for (const auto &d : descs)
        if (pred(d))
            out.push_back(d.id);
    return out;
}

} // namespace harpo::isa
