#!/usr/bin/env bash
# Full pre-merge check: configure, build and run the test suite twice —
# once plain and once under ASan+UBSan (-DHARPO_SANITIZE=ON). Run from
# anywhere; build trees live in build/ and build-sanitize/.
#
# Usage: check.sh [plain|sanitize|all]
#   plain     build/ctest only            (CI's fast job)
#   sanitize  build-sanitize/ctest only   (CI's sanitizer job)
#   all       both (default)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
suite="${1:-all}"

run_suite() {
    local dir="$1"; shift
    echo "==> configure ${dir} ($*)"
    cmake -B "${repo}/${dir}" -S "${repo}" "$@"
    echo "==> build ${dir}"
    cmake --build "${repo}/${dir}" -j
    echo "==> ctest ${dir}"
    (cd "${repo}/${dir}" && ctest --output-on-failure -j "$(nproc)")
}

case "${suite}" in
  plain)    run_suite build ;;
  sanitize) run_suite build-sanitize -DHARPO_SANITIZE=ON ;;
  all)
    run_suite build
    run_suite build-sanitize -DHARPO_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
