#!/usr/bin/env bash
# Full pre-merge check: configure, build and run the test suite twice —
# once plain and once under ASan+UBSan (-DHARPO_SANITIZE=ON). Run from
# anywhere; build trees live in build/ and build-sanitize/.
#
# Tests run tier by tier — unit first, then integration, then slow
# (ctest labels set by harpo_test) — so a broken unit test fails the
# run in seconds instead of after the multi-minute end-to-end suite.
#
# When ccache is installed it is used as the compiler launcher; CI
# persists its cache across runs keyed on the compiler and the
# CMakeLists.txt hashes.
#
# Usage: check.sh [plain|sanitize|all]
#   plain     build/ctest only            (CI's fast job)
#   sanitize  build-sanitize/ctest only   (CI's sanitizer job)
#   all       both (default)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
suite="${1:-all}"

launcher_args=()
if command -v ccache > /dev/null 2>&1; then
    launcher_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_suite() {
    local dir="$1"; shift
    echo "==> configure ${dir} ($*)"
    cmake -B "${repo}/${dir}" -S "${repo}" "${launcher_args[@]}" "$@"
    echo "==> build ${dir}"
    cmake --build "${repo}/${dir}" -j
    for tier in unit integration slow; do
        echo "==> ctest ${dir} [${tier}]"
        (cd "${repo}/${dir}" &&
             ctest --output-on-failure -j "$(nproc)" -L "${tier}")
    done
}

case "${suite}" in
  plain)    run_suite build ;;
  sanitize) run_suite build-sanitize -DHARPO_SANITIZE=ON ;;
  all)
    run_suite build
    run_suite build-sanitize -DHARPO_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
