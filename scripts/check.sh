#!/usr/bin/env bash
# Full pre-merge check: configure, build and run the test suite twice —
# once plain and once under ASan+UBSan (-DHARPO_SANITIZE=ON). Run from
# anywhere; build trees live in build/ and build-sanitize/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
    local dir="$1"; shift
    echo "==> configure ${dir} ($*)"
    cmake -B "${repo}/${dir}" -S "${repo}" "$@"
    echo "==> build ${dir}"
    cmake --build "${repo}/${dir}" -j
    echo "==> ctest ${dir}"
    (cd "${repo}/${dir}" && ctest --output-on-failure -j "$(nproc)")
}

run_suite build
run_suite build-sanitize -DHARPO_SANITIZE=ON

echo "==> all checks passed"
