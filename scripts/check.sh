#!/usr/bin/env bash
# Pre-merge and nightly checks: configure, build and run the test
# suite. Run from anywhere; build trees live in build/ and
# build-sanitize/.
#
# Tests run tier by tier (ctest labels set by harpo_test) so a broken
# unit test fails the run in seconds instead of after the multi-minute
# end-to-end suite. The fast tiers (unit + integration + campaign +
# search, where campaign covers the crash-safe runner including the
# SIGKILL chaos test and search covers the adaptive bandit/surrogate
# layer) are the PR gate; the slow tier (multi-second campaigns /
# evolution loops) runs in CI's scheduled nightly job and in
# `check.sh all`.
#
# When ccache is installed it is used as the compiler launcher; CI
# persists its cache across runs keyed on the compiler and the
# CMakeLists.txt hashes.
#
# Usage: check.sh [plain|sanitize|nightly|all]
#   plain     build/ctest, unit+integration+campaign+search
#                                                    (CI's fast job)
#   sanitize  build-sanitize/ctest, same tiers       (CI's sanitizer job)
#   nightly   build/ctest, slow tier only            (CI's scheduled job)
#   all       both trees, every tier (default)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
suite="${1:-all}"

launcher_args=()
if command -v ccache > /dev/null 2>&1; then
    launcher_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# run_suite <build-dir> <tiers> [cmake args...]
run_suite() {
    local dir="$1"; shift
    local tiers="$1"; shift
    echo "==> configure ${dir} ($*)"
    cmake -B "${repo}/${dir}" -S "${repo}" "${launcher_args[@]}" "$@"
    echo "==> build ${dir}"
    cmake --build "${repo}/${dir}" -j
    for tier in ${tiers}; do
        echo "==> ctest ${dir} [${tier}]"
        (cd "${repo}/${dir}" &&
             ctest --output-on-failure -j "$(nproc)" -L "${tier}")
    done
}

case "${suite}" in
  plain)    run_suite build "unit integration campaign search" ;;
  sanitize) run_suite build-sanitize "unit integration campaign search" \
                      -DHARPO_SANITIZE=ON ;;
  nightly)  run_suite build "slow" ;;
  all)
    run_suite build "unit integration campaign search slow"
    run_suite build-sanitize "unit integration campaign search slow" \
              -DHARPO_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|nightly|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
